open Ses_event
open Ses_pattern

type store_kind =
  | Flat
  | Indexed

type options = {
  filter : Event_filter.mode;
  filter_extras :
    (int * (Schema.Field.t * Predicate.op * Value.t) list) list;
  policy : Substitution.policy;
  finalize : bool;
  precheck_constants : bool;
  store : store_kind;
  domains : int;
  batch_size : int;
  telemetry : Telemetry.sink;
}

(* The default chunk size follows the tuned value [bench --batch-only]
   records in BENCH_batch.json ("tuned_batch"): throughput on the
   million-event duplicated workload plateaus from a few dozen events
   per chunk, and smaller chunks keep the working set cache-resident.
   The bench emits a warning field when this default drifts from the
   measured optimum. *)
let default_batch_size = 64

let default_options =
  {
    filter = Event_filter.No_filter;
    filter_extras = [];
    policy = Substitution.Operational;
    finalize = true;
    precheck_constants = true;
    store = Indexed;
    domains = 1;
    batch_size = default_batch_size;
    telemetry = None;
  }

(* An automaton instance (Definition 4): current state plus match buffer.
   Bindings are kept newest-first; [first_ts] is the timestamp of the
   earliest bound event (the first one, since events arrive in order).
   [counts] caches the number of bindings per variable so quantifier
   checks are O(1); it is copied on extension, never mutated in place.
   [id] is a per-stream creation stamp: it makes the instance-store
   bucket order (first_ts, id) total and deterministic. *)
type instance = {
  id : int;
  state : Varset.t;
  bindings : Substitution.binding list;
  counts : int array;
  first_ts : Time.t;
}

(* A transition with its condition set split into the constant atoms
   (v.A phi C, instance-independent) and the rest. With
   [precheck_constants] the constant atoms are evaluated once per input
   event instead of once per instance. [tgt_bucket] interns the target
   state's store bucket so staging a successor costs no lookup. *)
type prepared_transition = {
  transition : Automaton.transition;
  const_conds : Condition.t list;
  var_conds : Condition.t list;
  tgt_bucket : instance Instance_store.handle;
}

(* A negation guard: the variable whose occurrence kills, with its
   conditions split like a transition's so the constant part can veto a
   whole bucket once per event. *)
type guard = {
  neg_var : int;
  guard_conds : Condition.t list;
  guard_consts : Condition.t list;
}

type observation =
  | Created of Event.t
  | Took of {
      event : Event.t;
      transition : Automaton.transition;
      buffer : Substitution.t;
    }
  | Ignored of {
      event : Event.t;
      state : Varset.t;
      buffer : Substitution.t;
    }
  | Expired of {
      event : Event.t;
      accepting : bool;
      buffer : Substitution.t;
    }
  | Killed of {
      event : Event.t;
      state : Varset.t;
      buffer : Substitution.t;
    }
  | Emitted of Substitution.t

(* Everything the engine needs about one automaton state, resolved once
   per stream: outgoing transitions (split for the constant pre-check),
   the negation guards armed exactly there, whether it accepts, and the
   interned instance-store bucket — so the per-event loop runs over a
   flat array with zero hashtable probes. [active]/[active_stamp] cache
   the transitions surviving the constant pre-check for the event with
   stamp [active_stamp]; bumping the stream stamp invalidates every
   slot's cache at once. *)
type slot = {
  slot_state : Varset.t;
  accepting : bool;
  prepared : prepared_transition list;
  guards : guard list;
  bucket : instance Instance_store.handle;
  mutable active : prepared_transition list;
  mutable active_stamp : int;
}

(* The two population representations behind the [store] option: the
   reference flat list (the paper's Ω, scanned in full per event) and the
   state-indexed store. *)
type flat_pool = { mutable omega : instance list }

type population =
  | Omega of flat_pool
  | Store of instance Instance_store.t

(* Telemetry handles, resolved once per stream so an enabled probe is a
   field read, and a disabled stream pays one branch on [probes]. *)
type probes = {
  filter_span : Telemetry.Span.t;
  transition_span : Telemetry.Span.t;
  expiry_span : Telemetry.Span.t;
  bucket_scan : Telemetry.Histogram.t;
  population_gauge : Telemetry.Gauge.t;
}

type stream = {
  automaton : Automaton.t;
  options : options;
  filter : Event_filter.t;
  max_counts : int option array;  (** per-variable quantifier maxima *)
  strict_minima : (int * int) list;
      (** (variable, min) for variables whose quantifier requires more than
          one binding; checked at acceptance *)
  slots : slot array;  (** one per automaton state, ascending state order *)
  slot_of : (Varset.t, slot) Hashtbl.t;
      (** state → slot, for paths that meet instances in arbitrary states
          (the flat reference pool) *)
  start_slot : slot;
  fresh : instance;
      (** the start-state instance opened for every event; it is immutable
          and never stored, so one allocation serves the whole stream *)
  pop : population;
  probes : probes option;
  mutable stamp : int;
      (** kept-event counter; slots check their [active_stamp] against it
          instead of the old per-event [Hashtbl.reset] of an active table *)
  mutable next_id : int;
  mutable emissions : Substitution.t list;  (** newest first *)
  mutable last_ts : Time.t option;
  mutable observer : (observation -> unit) option;
  mutable filter_buf : Event.t array;
      (** scratch for the batched filter pass, grown to the largest chunk
          seen and reused — a fresh per-chunk array above ~256 words would
          land on the major heap and turn steady-state batching into major
          GC churn. Pins at most one chunk's worth of events. *)
  m : Metrics.t;
}

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
}

let create ?(options = default_options) automaton =
  let p = Automaton.pattern automaton in
  let store =
    Instance_store.create
      ~ts_of:(fun inst -> inst.first_ts)
      ~seq_of:(fun inst -> inst.id)
      ()
  in
  let negation_guards =
    let prefix b =
      Varset.of_list
        (List.concat_map (Pattern.set_vars p) (List.init (b + 1) Fun.id))
    in
    let boundaries =
      List.sort_uniq Int.compare (List.map fst (Pattern.negations p))
    in
    List.map
      (fun b ->
        ( prefix b,
          List.filter_map
            (fun (b', nv) ->
              if b' = b then
                let conds = Pattern.conditions_on p nv in
                Some
                  {
                    neg_var = nv;
                    guard_conds = conds;
                    guard_consts = List.filter Condition.is_constant conds;
                  }
              else None)
            (Pattern.negations p) ))
      boundaries
  in
  let accept = Automaton.accept automaton in
  let slots =
    Array.of_list
      (List.map
         (fun q ->
           {
             slot_state = q;
             accepting = Varset.equal q accept;
             prepared =
               List.map
                 (fun (tr : Automaton.transition) ->
                   let const_conds, var_conds =
                     List.partition Condition.is_constant tr.conds
                   in
                   {
                     transition = tr;
                     const_conds;
                     var_conds;
                     tgt_bucket = Instance_store.handle store tr.tgt;
                   })
                 (Automaton.outgoing automaton q);
             guards =
               List.concat_map
                 (fun (prefix, gs) -> if Varset.equal q prefix then gs else [])
                 negation_guards;
             bucket = Instance_store.handle store q;
             active = [];
             active_stamp = 0;
           })
         (Automaton.states automaton))
  in
  let slot_of = Hashtbl.create (Array.length slots) in
  Array.iter (fun s -> Hashtbl.replace slot_of s.slot_state s) slots;
  let start_slot = Hashtbl.find slot_of (Automaton.start automaton) in
  {
    automaton;
    options;
    filter = Event_filter.make ~extra:options.filter_extras p options.filter;
    max_counts =
      Array.init (Pattern.n_vars p) (fun v -> Pattern.max_count p v);
    strict_minima =
      List.filter_map
        (fun v ->
          let m = Pattern.min_count p v in
          if m > 1 then Some (v, m) else None)
        (List.init (Pattern.n_vars p) Fun.id);
    slots;
    slot_of;
    start_slot;
    fresh =
      {
        id = 0;
        state = Automaton.start automaton;
        bindings = [];
        counts = Array.make (Pattern.n_vars p) 0;
        first_ts = 0;
      };
    pop =
      (match options.store with
      | Flat -> Omega { omega = [] }
      | Indexed -> Store store);
    probes =
      Option.map
        (fun tl ->
          {
            filter_span = Telemetry.span tl "filter";
            transition_span = Telemetry.span tl "transition";
            expiry_span = Telemetry.span tl "expiry";
            bucket_scan = Telemetry.histogram tl "store.bucket_scan";
            population_gauge = Telemetry.gauge tl "population";
          })
        options.telemetry;
    stamp = 0;
    next_id = 1;
    emissions = [];
    last_ts = None;
    observer = None;
    filter_buf = [||];
    m = Metrics.create ();
  }

let set_observer st observer = st.observer <- observer

let observe st obs =
  match st.observer with None -> () | Some f -> f obs

let substitution_of inst = List.rev inst.bindings

let is_fresh inst = inst.bindings = []

let expired tau inst e =
  (not (is_fresh inst)) && Time.span (Event.ts e) inst.first_ts > tau

let const_holds c e =
  (* Constant conditions mention exactly one variable; binding it to [e]
     needs no buffer lookup. *)
  Condition.holds_binding c ~var:c.Condition.var ~event:e (fun _ -> [])

let bucket_of slot = slot.bucket

(* Transitions of [slot] worth trying on event [e]. Without the constant
   pre-check this is every outgoing transition; with it, transitions
   whose constant atoms [e] fails are pruned once per event — the stamp
   check makes the cache hit a pair of integer reads, shared by all
   instances in the state. *)
let candidate_transitions st slot e =
  if not st.options.precheck_constants then slot.prepared
  else if slot.active_stamp = st.stamp then slot.active
  else begin
    let trs =
      List.filter
        (fun pt -> List.for_all (fun c -> const_holds c e) pt.const_conds)
        slot.prepared
    in
    slot.active <- trs;
    slot.active_stamp <- st.stamp;
    trs
  end

(* Whether some negation guard armed at [slot] could kill on event [e]:
   at least one guard whose constant atoms [e] satisfies. Shared per
   bucket per event by the indexed store's skip decision. *)
let guards_may_fire slot e =
  slot.guards <> []
  && List.exists
       (fun g -> List.for_all (fun c -> const_holds c e) g.guard_consts)
       slot.guards

(* ConsumeEvent (Algorithm 2): successors of [inst] — sitting in [slot] —
   on event [e] are handed to [on_succ] (with the transition that fired
   them) in transition order. Returns [true] exactly when the instance
   survives unchanged, which lets the indexed feed keep untouched
   survivors in bucket order without re-sorting — fired or killed
   instances are consumed (replace-on-fire), a fresh instance is never
   kept. *)
let consume st slot inst e ~on_succ =
  let lookup v =
    List.rev
      (List.filter_map
         (fun (v', ev) -> if v' = v then Some ev else None)
         inst.bindings)
  in
  let precheck = st.options.precheck_constants in
  let fired = ref false in
  List.iter
    (fun pt ->
      let tr = pt.transition in
      (* Quantifier maximum: a loop must not bind beyond max. The
         per-instance binding counts make this an array read. *)
      let below_max =
        match st.max_counts.(tr.var) with
        | None -> true
        | Some m ->
            (not (Varset.mem tr.var tr.src)) || inst.counts.(tr.var) < m
      in
      let remaining = if precheck then pt.var_conds else tr.conds in
      let ok =
        below_max
        && List.for_all
             (fun c -> Condition.holds_binding c ~var:tr.var ~event:e lookup)
             remaining
      in
      if ok then begin
        fired := true;
        Metrics.on_transition st.m;
        Metrics.on_instance_created st.m;
        let counts = Array.copy inst.counts in
        counts.(tr.var) <- counts.(tr.var) + 1;
        let id = st.next_id in
        st.next_id <- id + 1;
        let successor =
          {
            id;
            state = tr.tgt;
            bindings = (tr.var, e) :: inst.bindings;
            counts;
            first_ts = (if is_fresh inst then Event.ts e else inst.first_ts);
          }
        in
        observe st
          (Took { event = e; transition = tr; buffer = substitution_of successor });
        on_succ pt successor
      end)
    (candidate_transitions st slot e);
  if !fired then false
  else if is_fresh inst then false
  else begin
    let killed =
      slot.guards <> []
      && List.exists
           (fun g ->
             List.for_all
               (fun c ->
                 Condition.holds_binding c ~var:g.neg_var ~event:e lookup)
               g.guard_conds)
           slot.guards
    in
    if killed then begin
      Metrics.on_killed st.m;
      observe st
        (Killed { event = e; state = inst.state; buffer = substitution_of inst });
      false
    end
    else begin
      observe st
        (Ignored
           { event = e; state = inst.state; buffer = substitution_of inst });
      true
    end
  end

let minima_satisfied st inst =
  List.for_all (fun (v, m) -> inst.counts.(v) >= m) st.strict_minima

let emit st inst =
  let subst = substitution_of inst in
  st.emissions <- subst :: st.emissions;
  Metrics.on_match st.m;
  observe st (Emitted subst);
  subst

let population st =
  match st.pop with
  | Omega o -> List.length o.omega
  | Store s -> Instance_store.size s

(* Algorithm 1's loop body over the flat list: the reference path, kept
   verbatim for differential testing and for benchmarking the store
   against it. *)
let feed_flat st o e =
  let tau = Automaton.tau st.automaton in
  let accept = Automaton.accept st.automaton in
  let completed = ref [] in
  let survivors = ref [] in
  (* The flat loop interleaves expiry and consumption per instance, so
     one transition span covers the whole sweep (the probe map in
     docs/architecture.md notes the asymmetry with the indexed path). *)
  let tok =
    match st.probes with
    | None -> 0
    | Some p -> Telemetry.Span.start p.transition_span
  in
  List.iter
    (fun inst ->
      if expired tau inst e then begin
        Metrics.on_expired st.m;
        let accepting =
          Varset.equal inst.state accept && minima_satisfied st inst
        in
        observe st
          (Expired { event = e; accepting; buffer = substitution_of inst });
        if accepting then completed := emit st inst :: !completed
      end
      else begin
        let slot = Hashtbl.find st.slot_of inst.state in
        let kept =
          consume st slot inst e ~on_succ:(fun _ succ ->
              survivors := succ :: !survivors)
        in
        if kept then survivors := inst :: !survivors
      end)
    (st.fresh :: o.omega);
  o.omega <- List.rev !survivors;
  let n = List.length o.omega in
  Metrics.sample_population st.m n;
  (match st.probes with
  | None -> ()
  | Some p ->
      Telemetry.Span.stop p.transition_span tok;
      Telemetry.Gauge.observe p.population_gauge n);
  List.rev !completed

(* The same loop over the state-indexed store. Buckets are visited in
   ascending state order; a bucket is only walked when the event could
   affect it — some transition survived the constant pre-check, some
   negation guard could fire, or an observer wants the per-instance
   [Ignored] narration. Expired instances are popped off the sorted
   prefix without touching the rest. *)
let feed_indexed st store e =
  let tau = Automaton.tau st.automaton in
  let completed = ref [] in
  (* Successors stage straight into their target state's interned bucket
     — the per-transition handle resolved at [create]. *)
  let stage_succ pt succ = Instance_store.stage_h pt.tgt_bucket succ in
  ignore (consume st st.start_slot st.fresh e ~on_succ:stage_succ);
  Array.iter
    (fun slot ->
      let bucket = bucket_of slot in
      if Instance_store.handle_size bucket > 0 then begin
        let tok =
          match st.probes with
          | None -> 0
          | Some p -> Telemetry.Span.start p.expiry_span
        in
        let dead =
          Instance_store.pop_expired_h bucket ~expired:(fun inst ->
              expired tau inst e)
        in
        (match st.probes with
        | None -> ()
        | Some p -> Telemetry.Span.stop p.expiry_span tok);
        List.iter
          (fun inst ->
            Metrics.on_expired st.m;
            let accepting = slot.accepting && minima_satisfied st inst in
            observe st
              (Expired { event = e; accepting; buffer = substitution_of inst });
            if accepting then completed := emit st inst :: !completed)
          dead;
        let scan =
          candidate_transitions st slot e <> []
          || guards_may_fire slot e
          || st.observer <> None
        in
        if scan && Instance_store.handle_size bucket > 0 then begin
          let tok =
            match st.probes with
            | None -> 0
            | Some p ->
                Telemetry.Histogram.observe p.bucket_scan
                  (Instance_store.handle_size bucket);
                Telemetry.Span.start p.transition_span
          in
          let insts = Instance_store.take_all_h bucket in
          let stayed =
            List.filter
              (fun inst -> consume st slot inst e ~on_succ:stage_succ)
              insts
          in
          Instance_store.put_back_h bucket stayed;
          match st.probes with
          | None -> ()
          | Some p -> Telemetry.Span.stop p.transition_span tok
        end
      end)
    st.slots;
  Instance_store.commit store;
  let n = Instance_store.size store in
  Metrics.sample_population st.m n;
  (match st.probes with
  | None -> ()
  | Some p -> Telemetry.Gauge.observe p.population_gauge n);
  List.rev !completed

(* One kept (filter-surviving) event entering the pool: bump the stamp
   (invalidating every slot's active-transition cache), account the fresh
   start-state instance, and run the store-specific loop. *)
let ingest_kept st e =
  st.stamp <- st.stamp + 1;
  Metrics.on_instance_created st.m;
  observe st (Created e);
  match st.pop with
  | Omega o -> feed_flat st o e
  | Store s -> feed_indexed st s e

let out_of_order = "Engine.feed: events out of chronological order"

let feed st e =
  (match st.last_ts with
  | Some t when Time.( <. ) (Event.ts e) t -> invalid_arg out_of_order
  | Some _ | None -> ());
  st.last_ts <- Some (Event.ts e);
  Metrics.on_event st.m;
  let kept =
    match st.probes with
    | None -> Event_filter.keep st.filter e
    | Some p ->
        let tok = Telemetry.Span.start p.filter_span in
        let kept = Event_filter.keep st.filter e in
        Telemetry.Span.stop p.filter_span tok;
        kept
  in
  if not kept then begin
    Metrics.on_filtered st.m;
    []
  end
  else ingest_kept st e

(* The batched loop over the indexed store. Semantics are those of
   feeding the events one by one, with two amortizations that are
   invisible to the (multiset of) emissions and finalized matches:

   - τ-expiry prefixes are popped once per batch (against the batch's
     first timestamp) instead of once per nonempty bucket per event;
     an instance whose window closes mid-batch is caught by the fused
     expiry check the moment its bucket is scanned — so it can never
     consume an event — and otherwise sits passively until the next
     sweep, [close], or a later scan emits it. Only the *position* of
     such an emission in the raw stream can differ from the one-by-one
     order, never its presence.

   - telemetry records per batch: one expiry span for the sweep, one
     transition span covering the whole kept loop (every event's bucket
     scans), and one population gauge observation at batch end.

   The per-event [feed] above remains the reference ordering; [feed_batch]
   falls back to it while an observer is installed so narration order
   stays exact. *)
let feed_indexed_batch st store kept n_kept =
  let tau = Automaton.tau st.automaton in
  let completed = ref [] in
  let emit_expired e slot inst =
    Metrics.on_expired st.m;
    let accepting = slot.accepting && minima_satisfied st inst in
    observe st
      (Expired { event = e; accepting; buffer = substitution_of inst });
    if accepting then completed := emit st inst :: !completed
  in
  (* Batch-start expiry sweep: one prefix pop per nonempty bucket. *)
  let e0 = kept.(0) in
  let tok =
    match st.probes with
    | None -> 0
    | Some p -> Telemetry.Span.start p.expiry_span
  in
  Array.iter
    (fun slot ->
      let bucket = bucket_of slot in
      if Instance_store.handle_size bucket > 0 then
        List.iter (emit_expired e0 slot)
          (Instance_store.pop_expired_h bucket ~expired:(fun inst ->
               expired tau inst e0)))
    st.slots;
  (match st.probes with
  | None -> ()
  | Some p -> Telemetry.Span.stop p.expiry_span tok);
  let stage_succ pt succ = Instance_store.stage_h pt.tgt_bucket succ in
  (* One transition span covers the whole kept loop — per-batch probe
     granularity, like the expiry sweep and the filter pass above. *)
  let tok =
    match st.probes with
    | None -> 0
    | Some p -> Telemetry.Span.start p.transition_span
  in
  for i = 0 to n_kept - 1 do
    let e = kept.(i) in
    st.stamp <- st.stamp + 1;
    Metrics.on_instance_created st.m;
    ignore (consume st st.start_slot st.fresh e ~on_succ:stage_succ);
    Array.iter
      (fun slot ->
        let bucket = bucket_of slot in
        if
          Instance_store.handle_size bucket > 0
          && (candidate_transitions st slot e <> [] || guards_may_fire slot e)
        then begin
          (match st.probes with
          | None -> ()
          | Some p ->
              Telemetry.Histogram.observe p.bucket_scan
                (Instance_store.handle_size bucket));
          let insts = Instance_store.take_all_h bucket in
          let stayed =
            List.filter
              (fun inst ->
                if expired tau inst e then begin
                  (* Fused expiry: the window closed mid-batch; emit (if
                     accepting) and drop before it can consume. *)
                  emit_expired e slot inst;
                  false
                end
                else consume st slot inst e ~on_succ:stage_succ)
              insts
          in
          Instance_store.put_back_h bucket stayed
        end)
      st.slots;
    Instance_store.commit store;
    Metrics.sample_population st.m (Instance_store.size store)
  done;
  (match st.probes with
  | None -> ()
  | Some p ->
      Telemetry.Span.stop p.transition_span tok;
      Telemetry.Gauge.observe p.population_gauge (Instance_store.size store));
  List.rev !completed

let feed_batch st events =
  let n = Array.length events in
  if n = 0 then []
  else begin
    (match st.last_ts with
    | Some t when Time.( <. ) (Event.ts events.(0)) t ->
        invalid_arg out_of_order
    | Some _ | None -> ());
    for i = 1 to n - 1 do
      if Time.( <. ) (Event.ts events.(i)) (Event.ts events.(i - 1)) then
        invalid_arg out_of_order
    done;
    st.last_ts <- Some (Event.ts events.(n - 1));
    Metrics.on_events st.m n;
    (* Batch filter pass: one span covers the chunk, and a trivial filter
       costs nothing at all. *)
    let kept, n_kept =
      match st.options.filter with
      | Event_filter.No_filter -> (events, n)
      | Event_filter.Paper | Event_filter.Strong ->
          if Array.length st.filter_buf < n then
            st.filter_buf <- Array.make n events.(0);
          let buf = st.filter_buf in
          let k = ref 0 in
          let run () =
            Array.iter
              (fun e ->
                if Event_filter.keep st.filter e then begin
                  buf.(!k) <- e;
                  incr k
                end)
              events
          in
          (match st.probes with
          | None -> run ()
          | Some p ->
              let tok = Telemetry.Span.start p.filter_span in
              run ();
              Telemetry.Span.stop p.filter_span tok);
          (buf, !k)
    in
    Metrics.on_filtered_many st.m (n - n_kept);
    if n_kept = 0 then []
    else
      match st.pop with
      | Store s when st.observer = None ->
          feed_indexed_batch st s kept n_kept
      | Store _ | Omega _ ->
          (* Reference orderings (flat pool, or an installed observer):
             process the chunk event by event. *)
          let acc = ref [] in
          for i = 0 to n_kept - 1 do
            acc := List.rev_append (ingest_kept st kept.(i)) !acc
          done;
          List.rev !acc
  end

let close st =
  let accept = Automaton.accept st.automaton in
  let flush insts =
    List.filter_map
      (fun inst ->
        if Varset.equal inst.state accept && minima_satisfied st inst then
          Some (emit st inst)
        else None)
      insts
  in
  match st.pop with
  | Omega o ->
      let flushed = flush (List.rev o.omega) in
      o.omega <- [];
      flushed
  | Store s ->
      (* Only the accepting bucket can flush; everything else just dies. *)
      let flushed = flush (Instance_store.take_all s accept) in
      Instance_store.clear s;
      flushed

let population_by_state st =
  let counts =
    match st.pop with
    | Omega o ->
        let table = Hashtbl.create 16 in
        List.iter
          (fun inst ->
            let n =
              Option.value ~default:0 (Hashtbl.find_opt table inst.state)
            in
            Hashtbl.replace table inst.state (n + 1))
          o.omega;
        Hashtbl.fold (fun q n acc -> (q, n) :: acc) table []
    | Store s ->
        Instance_store.fold_buckets
          (fun q insts acc -> (q, List.length insts) :: acc)
          s []
  in
  (* Descending by count; equal counts ordered by state so the listing is
     deterministic. *)
  List.sort
    (fun (qa, a) (qb, b) ->
      let c = Int.compare b a in
      if c <> 0 then c else Varset.compare qa qb)
    counts

let metrics st = Metrics.snapshot st.m

let emitted st = List.rev st.emissions

let run ?(options = default_options) automaton events =
  let st = create ~options automaton in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let finalize () =
    if options.finalize then
      Substitution.finalize ~policy:options.policy
        (Automaton.pattern automaton) raw
    else raw
  in
  let matches =
    match options.telemetry with
    | None -> finalize ()
    | Some tl -> Telemetry.Span.record (Telemetry.span tl "finalize") finalize
  in
  { matches; raw; metrics = Metrics.snapshot st.m }

let run_relation ?options automaton relation =
  run ?options automaton (Relation.to_seq relation)
