(** Reference matcher: exhaustive enumeration of Definition 2.

    [all_satisfying_1_3] enumerates every substitution of pattern variables
    by events that satisfies conditions 1–3 (Θ, inter-set order, window) by
    brute force — exponential in the input, intended as a test oracle and
    debugging aid on small relations. It is independent of the automaton:
    the only shared code is {!Substitution}'s condition checkers.

    The enumeration is also a scalpel for the semantic gap documented in
    {!Substitution.policy} and {!Partitioned}: skip-till-next-match is a
    {e strategy}, so the engine can miss substitutions that satisfy
    conditions 1–3 (e.g. the poisoned-branch scenario); the engine's output
    is always a subset of this module's. *)

open Ses_event
open Ses_pattern

exception Too_large of int
(** Raised when the enumeration would check more than the [limit] full
    assignments. Carries the limit. *)

val all_satisfying_1_3 :
  ?limit:int -> Pattern.t -> Relation.t -> Substitution.t list
(** All substitutions satisfying Definition 2's conditions 1–3 — plus the
    negation guards, for patterns using that extension — in deterministic
    order. Candidate events per variable are pre-filtered by the
    variable's constant conditions; group variables range over the
    non-empty subsets of their candidates. [limit] (default [1_000_000])
    bounds the number of full assignments checked. *)

val all_satisfying_1_3_events :
  ?limit:int -> Pattern.t -> Event.t array -> Substitution.t list
(** Same over a bare chronological event array — the form a streaming
    feed accumulates. Sequence numbers are taken as-is (they may have
    gaps when a store-side filter dropped rows). *)

val matches :
  ?limit:int ->
  ?policy:Substitution.policy ->
  Pattern.t ->
  Relation.t ->
  Substitution.t list
(** [all_satisfying_1_3] followed by {!Substitution.finalize}. Note this is
    {e not} the paper's algorithm: it reports every maximal (or literal-
    policy) substitution regardless of greedy reachability. *)

(** {1 Incremental interface}

    The push-based view, implementing {!Executor.EXECUTOR} so the oracle
    runs through the same harness as the real strategies. The enumeration
    needs the whole input, so [feed] only buffers (and always returns
    [[]]); the work happens at [close], which returns the raw oracle
    emissions ({!all_satisfying_1_3} with the default limit). *)

type stream

val create : ?options:Engine.options -> Automaton.t -> stream
(** Enumerates the automaton's pattern; the automaton itself is unused
    (the oracle is deliberately automaton-independent). *)

val feed : stream -> Event.t -> Substitution.t list
(** Buffers the event; raises [Invalid_argument] on out-of-order input
    (the shared executor contract). *)

val feed_batch : stream -> Event.t array -> Substitution.t list
(** Buffers a chronological chunk; always [[]], like {!feed}. *)

val close : stream -> Substitution.t list
(** Runs the enumeration over the buffered events. May raise
    {!Too_large}. Idempotent; later calls return [[]]. *)

val emitted : stream -> Substitution.t list

val population : stream -> int
(** Always 0 — the oracle keeps no automaton instances. *)

val metrics : stream -> Metrics.snapshot
