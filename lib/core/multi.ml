
type entry = {
  name : string;
  automaton : Automaton.t;
  exec : Executor.packed;
}

type t = {
  entries : entry list;
  options : Engine.options;
}

let validate names =
  if List.exists (fun n -> n = "") names then
    invalid_arg "Multi.create: empty query name";
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Multi.create: duplicate query name"

let create_mixed ?(options = Engine.default_options) queries =
  validate (List.map (fun (name, _, _) -> name) queries);
  {
    entries =
      List.map
        (fun (name, automaton, strategy) ->
          { name; automaton; exec = Executor.create ~options strategy automaton })
        queries;
    options;
  }

let create ?options ?(strategy = `Plain) queries =
  create_mixed ?options
    (List.map (fun (name, automaton) -> (name, automaton, strategy)) queries)

let names t = List.map (fun e -> e.name) t.entries

let strategy_names t =
  List.map (fun e -> (e.name, Executor.name e.exec)) t.entries

let feed t event =
  List.filter_map
    (fun e ->
      match Executor.feed e.exec event with
      | [] -> None
      | completed -> Some (e.name, completed))
    t.entries

let close t =
  List.filter_map
    (fun e ->
      match Executor.close e.exec with
      | [] -> None
      | flushed -> Some (e.name, flushed))
    t.entries

let population t =
  List.fold_left (fun acc e -> acc + Executor.population e.exec) 0 t.entries

let outcomes t =
  List.map
    (fun e ->
      let raw = Executor.emitted e.exec in
      let matches =
        if t.options.Engine.finalize then
          Substitution.finalize ~policy:t.options.Engine.policy
            (Automaton.pattern e.automaton) raw
        else raw
      in
      (e.name, { Engine.matches; raw; metrics = Executor.metrics e.exec }))
    t.entries

let run ?options ?strategy queries events =
  let t = create ?options ?strategy queries in
  Seq.iter (fun e -> ignore (feed t e)) events;
  ignore (close t);
  outcomes t
