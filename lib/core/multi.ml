open Ses_event

type entry = {
  name : string;
  automaton : Automaton.t;
  exec : Executor.packed;
}

(* In parallel mode every query is pinned to one worker domain
   (round-robin by registration order) and the feed is broadcast: each
   worker runs its queries' executors sequentially over the whole
   stream, exactly as the sequential mode does — only on its own domain.
   Executors are created with [domains = 1] so a partitioned query never
   nests a second domain pool under a Multi worker. *)
(* As in {!Partitioned}'s sharded mode, events are shipped in batches
   through a {!Domain_pool.batcher}: the broadcast buffers up to
   [options.batch_size] events and hands every worker the same array,
   amortising the queue handshake. The workers still feed their
   executors event by event — each query's executor must observe the
   exact per-event sequence so parallel metrics equal sequential ones. *)

type parallel = {
  pool : Event.t array Domain_pool.t;
  groups : entry list array;  (* registration order within a group *)
  batcher : Event.t Domain_pool.batcher;  (* broadcast buffer *)
  mutable flushed : bool;
}

type runtime = Sequential | Parallel of parallel

type t = {
  entries : entry list;
  options : Engine.options;
  runtime : runtime;
}

let validate names =
  if List.exists (fun n -> n = "") names then
    invalid_arg "Multi.create: empty query name";
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Multi.create: duplicate query name"

let create_mixed ?(options = Engine.default_options) queries =
  validate (List.map (fun (name, _, _) -> name) queries);
  let domains = min options.Engine.domains (List.length queries) in
  let exec_options =
    if domains > 1 then { options with Engine.domains = 1 } else options
  in
  let entries =
    List.map
      (fun (name, automaton, strategy) ->
        (* In parallel mode each query's executor records through its own
           forked child: queries pinned to different workers must not
           share plain-mutable span/histogram state. *)
        let entry_options =
          if domains <= 1 then exec_options
          else
            match exec_options.Engine.telemetry with
            | None -> exec_options
            | Some tl ->
                {
                  exec_options with
                  Engine.telemetry = Some (Telemetry.fork tl);
                }
        in
        {
          name;
          automaton;
          exec = Executor.create ~options:entry_options strategy automaton;
        })
      queries
  in
  let runtime =
    if domains <= 1 then Sequential
    else begin
      let groups = Array.make domains [] in
      List.iteri
        (fun i e -> groups.(i mod domains) <- e :: groups.(i mod domains))
        entries;
      Array.iteri (fun i g -> groups.(i) <- List.rev g) groups;
      let pool =
        Domain_pool.create ?telemetry:options.Engine.telemetry ~domains
          (fun i events ->
            Array.iter
              (fun event ->
                List.iter
                  (fun e -> ignore (Executor.feed e.exec event))
                  groups.(i))
              events)
      in
      let batch_hist =
        Option.map
          (fun tl -> Telemetry.histogram tl "pool.batch_events")
          options.Engine.telemetry
      in
      let batcher =
        Domain_pool.batcher ?hist:batch_hist
          ~limit:(max 1 options.Engine.batch_size) pool
      in
      Parallel { pool; groups; batcher; flushed = false }
    end
  in
  { entries; options; runtime }

let create ?options ?(strategy = `Plain) queries =
  create_mixed ?options
    (List.map (fun (name, automaton) -> (name, automaton, strategy)) queries)

let names t = List.map (fun e -> e.name) t.entries

let strategy_names t =
  List.map (fun e -> (e.name, Executor.name e.exec)) t.entries

let n_domains t =
  match t.runtime with
  | Sequential -> 1
  | Parallel p -> Domain_pool.size p.pool

let feed t event =
  match t.runtime with
  | Sequential ->
      List.filter_map
        (fun e ->
          match Executor.feed e.exec event with
          | [] -> None
          | completed -> Some (e.name, completed))
        t.entries
  | Parallel p ->
      if p.flushed then invalid_arg "Multi.feed: query set is closed";
      (* Broadcast: every worker receives every event and drives its own
         queries. Per-event completions surface at [close]/[outcomes]. *)
      Domain_pool.broadcast p.batcher event;
      []

let feed_batch t events =
  match t.runtime with
  | Sequential ->
      List.filter_map
        (fun e ->
          match Executor.feed_batch e.exec events with
          | [] -> None
          | completed -> Some (e.name, completed))
        t.entries
  | Parallel p ->
      if p.flushed then invalid_arg "Multi.feed_batch: query set is closed";
      Array.iter (fun event -> Domain_pool.broadcast p.batcher event) events;
      []

let close t =
  match t.runtime with
  | Sequential ->
      List.filter_map
        (fun e ->
          match Executor.close e.exec with
          | [] -> None
          | flushed -> Some (e.name, flushed))
        t.entries
  | Parallel p ->
      (* Join the workers first (shutdown flushes the broadcast batcher
         before closing the queues): afterwards the executors are owned
         by the calling thread again and flush sequentially, in
         registration order, as the sequential mode does. *)
      Domain_pool.shutdown p.pool;
      if p.flushed then []
      else begin
        p.flushed <- true;
        List.filter_map
          (fun e ->
            match Executor.close e.exec with
            | [] -> None
            | flushed -> Some (e.name, flushed))
          t.entries
      end

let quiesce t =
  match t.runtime with
  | Sequential -> ()
  | Parallel p -> Domain_pool.quiesce p.pool

let population t =
  quiesce t;
  List.fold_left (fun acc e -> acc + Executor.population e.exec) 0 t.entries

let outcomes t =
  quiesce t;
  List.map
    (fun e ->
      let raw = Executor.emitted e.exec in
      let matches =
        if t.options.Engine.finalize then
          Substitution.finalize ~policy:t.options.Engine.policy
            (Automaton.pattern e.automaton) raw
        else raw
      in
      (e.name, { Engine.matches; raw; metrics = Executor.metrics e.exec }))
    t.entries

(* Every query consumes the whole feed, so the cross-query view uses the
   replica accounting: input counters agree (max), work counters and the
   simultaneous-instance peaks sum. *)
let merged_metrics t =
  quiesce t;
  Metrics.merge_replicas (List.map (fun e -> Executor.metrics e.exec) t.entries)

let run ?options ?strategy queries events =
  let t = create ?options ?strategy queries in
  Seq.iter (fun e -> ignore (feed t e)) events;
  ignore (close t);
  outcomes t
