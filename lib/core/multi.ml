open Ses_event

(* ------------------------------------------------------------------ *)
(* Independent backend: one executor per registration.                *)
(* ------------------------------------------------------------------ *)

type entry = {
  name : string;
  automaton : Automaton.t;
  exec : Executor.packed;
}

(* In independent-parallel mode every query is pinned to one worker
   domain (round-robin by registration order) and the feed is broadcast:
   each worker runs its queries' executors sequentially over the whole
   stream, exactly as the sequential mode does — only on its own domain.
   Executors are created with [domains = 1] so a partitioned query never
   nests a second domain pool under a Multi worker. *)
(* As in {!Partitioned}'s sharded mode, events are shipped in batches
   through a {!Domain_pool.batcher}: the broadcast buffers up to
   [options.batch_size] events and hands every worker the same array,
   amortising the queue handshake. The workers still feed their
   executors event by event — each query's executor must observe the
   exact per-event sequence so parallel metrics equal sequential ones. *)

type parallel = {
  pool : Event.t array Domain_pool.t;
  groups : entry list array;  (* registration order within a group *)
  batcher : Event.t Domain_pool.batcher;  (* broadcast buffer *)
  mutable flushed : bool;
}

(* Shared-parallel mode: registrations are split into unit-whole shards
   (see {!Shared_plan.partition}) and each worker domain builds its own
   shared plan over its shard — built {e on} the worker through
   {!Domain_pool.create_with}, so the plan's interior mutability stays
   domain-local. The feed is broadcast; per-query results are read after
   quiesce/shutdown, which establish the happens-before edges. *)
type shared_parallel = {
  sh_pool : Event.t array Domain_pool.t;
  sh_plans : Shared_plan.t array;  (* shard order; read after quiesce *)
  sh_batcher : Event.t Domain_pool.batcher;
  mutable sh_flushed : bool;
}

(* Sequential shared mode keeps the plan plus any "extras": queries
   registered after the first event, which cannot join the already-fed
   shared population and therefore run as independent executors beside
   it. Registrations before the first event rebuild the (empty) plan so
   they share fully. *)
type shared_state = {
  mutable plan : Shared_plan.t;
  mutable extras : entry list;  (* registration order *)
}

type backend =
  | Independent of entry list
  | Independent_par of entry list * parallel
  | Shared of shared_state
  | Shared_par of shared_parallel

type t = {
  mutable regs : (string * Automaton.t * Executor.strategy) list;
  options : Engine.options;
  mutable backend : backend;
}

let validate names =
  if List.exists (fun n -> n = "") names then
    invalid_arg "Multi.create: empty query name";
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Multi.create: duplicate query name"

let make_independent options domains queries =
  let exec_options =
    if domains > 1 then { options with Engine.domains = 1 } else options
  in
  let entries =
    List.map
      (fun (name, automaton, strategy) ->
        (* In parallel mode each query's executor records through its own
           forked child: queries pinned to different workers must not
           share plain-mutable span/histogram state. *)
        let entry_options =
          if domains <= 1 then exec_options
          else
            match exec_options.Engine.telemetry with
            | None -> exec_options
            | Some tl ->
                {
                  exec_options with
                  Engine.telemetry = Some (Telemetry.fork tl);
                }
        in
        {
          name;
          automaton;
          exec = Executor.create ~options:entry_options strategy automaton;
        })
      queries
  in
  if domains <= 1 then Independent entries
  else begin
    let groups = Array.make domains [] in
    List.iteri
      (fun i e -> groups.(i mod domains) <- e :: groups.(i mod domains))
      entries;
    Array.iteri (fun i g -> groups.(i) <- List.rev g) groups;
    let pool =
      Domain_pool.create ?telemetry:options.Engine.telemetry ~domains
        (fun i events ->
          Array.iter
            (fun event ->
              List.iter
                (fun e -> ignore (Executor.feed e.exec event))
                groups.(i))
            events)
    in
    let batch_hist =
      Option.map
        (fun tl -> Telemetry.histogram tl "pool.batch_events")
        options.Engine.telemetry
    in
    let batcher =
      Domain_pool.batcher ?hist:batch_hist
        ~limit:(max 1 options.Engine.batch_size) pool
    in
    Independent_par (entries, { pool; groups; batcher; flushed = false })
  end

let plan_regs queries =
  List.map
    (fun (name, automaton, strategy) ->
      { Shared_plan.r_name = name; r_automaton = automaton; r_strategy = strategy })
    queries

let make_shared options domains queries =
  if domains <= 1 then
    Shared
      { plan = Shared_plan.create ~options (plan_regs queries); extras = [] }
  else begin
    let shards =
      Shared_plan.partition ~options ~shards:domains (plan_regs queries)
    in
    (* Each worker's plan records through its own telemetry fork and
       never nests a second domain pool. The forks are created here, on
       the calling thread, but written only by their worker. *)
    let shard_options =
      Array.map
        (fun _ ->
          {
            options with
            Engine.domains = 1;
            telemetry = Option.map Telemetry.fork options.Engine.telemetry;
          })
        shards
    in
    let slots = Array.make domains None in
    let pool =
      Domain_pool.create_with ?telemetry:options.Engine.telemetry ~domains
        ~init:(fun i ->
          let plan =
            Shared_plan.create ~options:shard_options.(i) shards.(i)
          in
          slots.(i) <- Some plan;
          plan)
        (* Per-event feeding (the chunking only amortizes the queue
           handshake): each query must observe the exact per-event
           sequence so parallel metrics equal sequential ones. *)
        (fun plan events ->
          Array.iter (fun e -> ignore (Shared_plan.feed plan e)) events)
    in
    (* The ready handshake in [create_with] makes the inits' writes
       visible here. *)
    let plans = Array.map Option.get slots in
    let batch_hist =
      Option.map
        (fun tl -> Telemetry.histogram tl "pool.batch_events")
        options.Engine.telemetry
    in
    let batcher =
      Domain_pool.batcher ?hist:batch_hist
        ~limit:(max 1 options.Engine.batch_size) pool
    in
    Shared_par
      { sh_pool = pool; sh_plans = plans; sh_batcher = batcher; sh_flushed = false }
  end

let create_mixed ?(options = Engine.default_options) ?(shared = true) queries =
  validate (List.map (fun (name, _, _) -> name) queries);
  let domains = min options.Engine.domains (List.length queries) in
  let backend =
    if shared then make_shared options domains queries
    else make_independent options domains queries
  in
  { regs = queries; options; backend }

let create ?options ?(strategy = `Plain) ?shared queries =
  create_mixed ?options ?shared
    (List.map (fun (name, automaton) -> (name, automaton, strategy)) queries)

let names t = List.map (fun (n, _, _) -> n) t.regs

let strategy_names t =
  match t.backend with
  | Independent entries | Independent_par (entries, _) ->
      List.map (fun e -> (e.name, Executor.name e.exec)) entries
  | Shared _ | Shared_par _ ->
      List.map (fun (n, _, s) -> (n, Executor.strategy_name s)) t.regs

let n_domains t =
  match t.backend with
  | Independent _ | Shared _ -> 1
  | Independent_par (_, p) -> Domain_pool.size p.pool
  | Shared_par p -> Domain_pool.size p.sh_pool

(* Per-name results in global registration order (each shard preserves
   its own registration order, but shards interleave). *)
let reorder t pairs =
  let idx = Hashtbl.create 16 in
  List.iteri (fun i (n, _, _) -> Hashtbl.replace idx n i) t.regs;
  List.sort
    (fun (a, _) (b, _) ->
      Int.compare (Hashtbl.find idx a) (Hashtbl.find idx b))
    pairs

let feed_entries entries event =
  List.filter_map
    (fun e ->
      match Executor.feed e.exec event with
      | [] -> None
      | completed -> Some (e.name, completed))
    entries

let feed t event =
  match t.backend with
  | Independent entries -> feed_entries entries event
  | Shared s ->
      let from_plan = Shared_plan.feed s.plan event in
      if s.extras = [] then from_plan
      else reorder t (from_plan @ feed_entries s.extras event)
  | Independent_par (_, p) ->
      if p.flushed then invalid_arg "Multi.feed: query set is closed";
      (* Broadcast: every worker receives every event and drives its own
         queries. Per-event completions surface at [close]/[outcomes]. *)
      Domain_pool.broadcast p.batcher event;
      []
  | Shared_par p ->
      if p.sh_flushed then invalid_arg "Multi.feed: query set is closed";
      Domain_pool.broadcast p.sh_batcher event;
      []

let feed_batch_entries entries events =
  List.filter_map
    (fun e ->
      match Executor.feed_batch e.exec events with
      | [] -> None
      | completed -> Some (e.name, completed))
    entries

let feed_batch t events =
  match t.backend with
  | Independent entries -> feed_batch_entries entries events
  | Shared s ->
      let from_plan = Shared_plan.feed_batch s.plan events in
      if s.extras = [] then from_plan
      else reorder t (from_plan @ feed_batch_entries s.extras events)
  | Independent_par (_, p) ->
      if p.flushed then invalid_arg "Multi.feed_batch: query set is closed";
      Array.iter (fun event -> Domain_pool.broadcast p.batcher event) events;
      []
  | Shared_par p ->
      if p.sh_flushed then invalid_arg "Multi.feed_batch: query set is closed";
      Array.iter (fun event -> Domain_pool.broadcast p.sh_batcher event) events;
      []

let close_entries entries =
  List.filter_map
    (fun e ->
      match Executor.close e.exec with
      | [] -> None
      | flushed -> Some (e.name, flushed))
    entries

let close t =
  match t.backend with
  | Independent entries -> close_entries entries
  | Shared s ->
      let from_plan = Shared_plan.close s.plan in
      if s.extras = [] then from_plan
      else reorder t (from_plan @ close_entries s.extras)
  | Independent_par (entries, p) ->
      (* Join the workers first (shutdown flushes the broadcast batcher
         before closing the queues): afterwards the executors are owned
         by the calling thread again and flush sequentially, in
         registration order, as the sequential mode does. *)
      Domain_pool.shutdown p.pool;
      if p.flushed then []
      else begin
        p.flushed <- true;
        List.filter_map
          (fun e ->
            match Executor.close e.exec with
            | [] -> None
            | flushed -> Some (e.name, flushed))
          entries
      end
  | Shared_par p ->
      Domain_pool.shutdown p.sh_pool;
      if p.sh_flushed then []
      else begin
        p.sh_flushed <- true;
        reorder t
          (List.concat_map Shared_plan.close (Array.to_list p.sh_plans))
      end

let quiesce t =
  match t.backend with
  | Independent _ | Shared _ -> ()
  | Independent_par (_, p) -> Domain_pool.quiesce p.pool
  | Shared_par p -> Domain_pool.quiesce p.sh_pool

let population t =
  quiesce t;
  match t.backend with
  | Independent entries | Independent_par (entries, _) ->
      List.fold_left (fun acc e -> acc + Executor.population e.exec) 0 entries
  | Shared s ->
      Shared_plan.population s.plan
      + List.fold_left
          (fun acc e -> acc + Executor.population e.exec)
          0 s.extras
  | Shared_par p ->
      Array.fold_left
        (fun acc sp -> acc + Shared_plan.population sp)
        0 p.sh_plans

(* Shared-mode outcomes: finalization needs the whole raw candidate set
   per query, and aliased registrations share identical raw, so the
   finalize pass is memoized per alias id within each plan. *)
let shared_outcomes t plans =
  let memo = Hashtbl.create 16 in
  let per_query =
    List.concat
      (List.mapi
         (fun pi sp ->
           List.map
             (fun (r : Shared_plan.query_result) ->
               let matches =
                 if t.options.Engine.finalize then (
                   match Hashtbl.find_opt memo (pi, r.q_alias) with
                   | Some m -> m
                   | None ->
                       let m =
                         Substitution.finalize ~policy:t.options.Engine.policy
                           (Automaton.pattern r.q_automaton)
                           r.q_raw
                       in
                       Hashtbl.add memo (pi, r.q_alias) m;
                       m)
                 else r.q_raw
               in
               ( r.q_name,
                 { Engine.matches; raw = r.q_raw; metrics = r.q_metrics } ))
             (Shared_plan.results sp))
         plans)
  in
  reorder t per_query

let finalized t automaton raw metrics =
  let matches =
    if t.options.Engine.finalize then
      Substitution.finalize ~policy:t.options.Engine.policy
        (Automaton.pattern automaton) raw
    else raw
  in
  { Engine.matches; raw; metrics }

let entry_outcome t e =
  ( e.name,
    finalized t e.automaton (Executor.emitted e.exec) (Executor.metrics e.exec)
  )

let outcomes t =
  quiesce t;
  match t.backend with
  | Independent entries | Independent_par (entries, _) ->
      List.map (entry_outcome t) entries
  | Shared s ->
      if s.extras = [] then shared_outcomes t [ s.plan ]
      else
        reorder t
          (shared_outcomes t [ s.plan ] @ List.map (entry_outcome t) s.extras)
  | Shared_par p -> shared_outcomes t (Array.to_list p.sh_plans)

(* Every query observes the whole feed (shared-mode metrics are
   compensated to the independent view), so the cross-query summary uses
   the replica accounting: input counters agree (max), work counters and
   the simultaneous-instance peaks sum. *)
let merged_metrics t =
  quiesce t;
  match t.backend with
  | Independent entries | Independent_par (entries, _) ->
      Metrics.merge_replicas
        (List.map (fun e -> Executor.metrics e.exec) entries)
  | Shared s ->
      Metrics.merge_replicas
        (List.map
           (fun (r : Shared_plan.query_result) -> r.q_metrics)
           (Shared_plan.results s.plan)
        @ List.map (fun e -> Executor.metrics e.exec) s.extras)
  | Shared_par p ->
      Metrics.merge_replicas
        (List.concat_map
           (fun sp ->
             List.map
               (fun (r : Shared_plan.query_result) -> r.q_metrics)
               (Shared_plan.results sp))
           (Array.to_list p.sh_plans))

let shared_stats t =
  quiesce t;
  match t.backend with
  | Independent _ | Independent_par _ -> []
  | Shared s -> [ Shared_plan.stats s.plan ]
  | Shared_par p -> Array.to_list (Array.map Shared_plan.stats p.sh_plans)

(* ------------------------------------------------------------------ *)
(* Runtime registration (sequential backends only).                   *)
(* ------------------------------------------------------------------ *)

let sequential_only t op =
  match t.backend with
  | Independent_par _ | Shared_par _ ->
      invalid_arg
        ("Multi." ^ op ^ ": domain-parallel query sets are fixed at creation")
  | Independent _ | Shared _ -> ()

let register t (name, automaton, strategy) =
  sequential_only t "register";
  if name = "" then invalid_arg "Multi.register: empty query name";
  if List.exists (fun (n, _, _) -> n = name) t.regs then
    invalid_arg ("Multi.register: duplicate query name " ^ name);
  (match t.backend with
  | Independent entries ->
      let e =
        {
          name;
          automaton;
          exec = Executor.create ~options:t.options strategy automaton;
        }
      in
      t.backend <- Independent (entries @ [ e ])
  | Shared s ->
      if Shared_plan.events_fed s.plan = 0 && s.extras = [] then
        (* Nothing fed yet: rebuild the (empty) plan so the newcomer
           shares fully — "register everything, then feed" gets the same
           plan as creation-time registration. *)
        s.plan <-
          Shared_plan.create ~options:t.options
            (plan_regs (t.regs @ [ (name, automaton, strategy) ]))
      else
        (* The shared population already reflects fed events the
           newcomer must not observe: run it independently beside the
           plan. *)
        s.extras <-
          s.extras
          @ [
              {
                name;
                automaton;
                exec = Executor.create ~options:t.options strategy automaton;
              };
            ]
  | Independent_par _ | Shared_par _ -> assert false);
  t.regs <- t.regs @ [ (name, automaton, strategy) ]

let unregister t name =
  sequential_only t "unregister";
  let outcome =
    match t.backend with
    | Independent entries -> (
        match List.find_opt (fun e -> e.name = name) entries with
        | None -> invalid_arg ("Multi.unregister: unknown query " ^ name)
        | Some e ->
            ignore (Executor.close e.exec);
            t.backend <-
              Independent (List.filter (fun x -> x.name <> name) entries);
            snd (entry_outcome t e))
    | Shared s -> (
        match List.find_opt (fun e -> e.name = name) s.extras with
        | Some e ->
            ignore (Executor.close e.exec);
            s.extras <- List.filter (fun x -> x.name <> name) s.extras;
            snd (entry_outcome t e)
        | None -> (
            match Shared_plan.retire s.plan name with
            | r -> finalized t r.q_automaton r.q_raw r.q_metrics
            | exception Invalid_argument _ ->
                invalid_arg ("Multi.unregister: unknown query " ^ name)))
    | Independent_par _ | Shared_par _ -> assert false
  in
  t.regs <- List.filter (fun (n, _, _) -> n <> name) t.regs;
  outcome

let run ?options ?strategy ?shared queries events =
  let t = create ?options ?strategy ?shared queries in
  (* Chunk the stream through [feed_batch] so the per-batch
     amortizations (shared-plan routing, engine prechecks, telemetry)
     activate here too, mirroring {!Executor.drive}'s reused buffer:
     batches never outlive the call, and the buffer is allocated lazily
     off the first event since [Event.t] has no dummy value. *)
  let chunk = max 1 t.options.Engine.batch_size in
  let buf = ref [||] and n = ref 0 in
  let flush () =
    if !n > 0 then begin
      let arr =
        if !n = Array.length !buf then !buf else Array.sub !buf 0 !n
      in
      n := 0;
      ignore (feed_batch t arr)
    end
  in
  Seq.iter
    (fun e ->
      if Array.length !buf = 0 then buf := Array.make chunk e;
      !buf.(!n) <- e;
      incr n;
      if !n >= chunk then flush ())
    events;
  flush ();
  ignore (close t);
  outcomes t
