
type entry = {
  name : string;
  automaton : Automaton.t;
  stream : Engine.stream;
}

type t = {
  entries : entry list;
  options : Engine.options;
}

let create ?(options = Engine.default_options) queries =
  let names = List.map fst queries in
  if List.exists (fun n -> n = "") names then
    invalid_arg "Multi.create: empty query name";
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Multi.create: duplicate query name";
  let stream_options = { options with Engine.finalize = false } in
  {
    entries =
      List.map
        (fun (name, automaton) ->
          { name; automaton; stream = Engine.create ~options:stream_options automaton })
        queries;
    options;
  }

let names t = List.map (fun e -> e.name) t.entries

let feed t event =
  List.filter_map
    (fun e ->
      match Engine.feed e.stream event with
      | [] -> None
      | completed -> Some (e.name, completed))
    t.entries

let close t =
  List.filter_map
    (fun e ->
      match Engine.close e.stream with
      | [] -> None
      | flushed -> Some (e.name, flushed))
    t.entries

let population t =
  List.fold_left (fun acc e -> acc + Engine.population e.stream) 0 t.entries

let outcomes t =
  List.map
    (fun e ->
      let raw = Engine.emitted e.stream in
      let matches =
        if t.options.Engine.finalize then
          Substitution.finalize ~policy:t.options.Engine.policy
            (Automaton.pattern e.automaton) raw
        else raw
      in
      (e.name, { Engine.matches; raw; metrics = Engine.metrics e.stream }))
    t.entries

let run ?options queries events =
  let t = create ?options queries in
  Seq.iter (fun e -> ignore (feed t e)) events;
  ignore (close t);
  outcomes t
