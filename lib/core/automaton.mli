(** SES automata (Definition 3) and their construction (Sec. 4.2).

    An automaton is built from a pattern in two steps: each event set
    pattern is translated into an automaton whose states are the subsets of
    that set ({!of_set_pattern}), and the per-set automata are concatenated
    in pattern order ({!concat}); {!of_pattern} composes the two steps.
    Concatenation renames the second automaton's states by the first's
    variable set and extends the conditions of transitions leaving the
    merged state with the time constraints v'.T < v.T that enforce the
    inter-set order (condition 2 of Definition 2). *)

open Ses_event
open Ses_pattern

type transition = {
  src : Varset.t;
  var : int;  (** the variable bound when the transition is taken *)
  tgt : Varset.t;  (** src ∪ {var}; equals [src] for a group-variable loop *)
  conds : Condition.t list;  (** Θδ *)
}

type t

val of_set_pattern : Pattern.t -> int -> t
(** [of_set_pattern p i] is the automaton N_{i+1} of the i-th event set
    pattern considered in isolation (Sec. 4.2.1): states are all subsets of
    Vi, the start state is ∅ and the accepting state is Vi. Transition
    conditions contain every θ ∈ Θ that constrains the bound variable
    against a constant or against variables of preceding sets, the source
    state, or itself. *)

val concat : t -> t -> t
(** [concat n1 n2] per Sec. 4.2.2. Both automata must stem from the same
    pattern and cover adjacent variable ranges ([n2]'s start state renames
    to [n1]'s accepting state); raises [Invalid_argument] otherwise. *)

val of_pattern : Pattern.t -> t
(** Left fold of {!concat} over the per-set automata, i.e.
    ((N1 N2) N3) … Nm. *)

val prune : t -> dead:(transition -> bool) -> t
(** [prune a ~dead] removes the transitions on which [dead] holds, then
    every state no longer reachable from the start state together with
    its outgoing transitions (an unreachable state never holds an
    instance, so this is pure bookkeeping). The start and accepting
    states are always kept. Transition order within a state is
    preserved. When no transition is dead the result is [a] itself
    (physical identity), letting callers detect an unchanged automaton
    with [==].

    Soundness: this is result-preserving {e only} for transitions that
    can never fire. Removing a fireable transition would change which
    instances are consumed under the engine's replace-on-fire semantics
    even if it never leads to an accepting run. *)

(** {1 Accessors} *)

val pattern : t -> Pattern.t

val tau : t -> Time.duration

val states : t -> Varset.t list
(** All states, ascending by bitmask. *)

val n_states : t -> int

val start : t -> Varset.t

val accept : t -> Varset.t

val transitions : t -> transition list

val n_transitions : t -> int

val outgoing : t -> Varset.t -> transition list
(** Transitions with the given source state (loops included). *)

val is_loop : transition -> bool

val n_paths : t -> int
(** Number of distinct simple paths from start to accept —
    |V1|! · … · |Vm|! (loops excluded); this is also the number of automata
    the brute-force baseline builds (Sec. 5.2). *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing of states and transitions with conditions. *)
