open Ses_event
open Ses_pattern

type transition = {
  src : Varset.t;
  var : int;
  tgt : Varset.t;
  conds : Condition.t list;
}

type t = {
  pattern : Pattern.t;
  segment : Varset.t;  (* variables covered by this (partial) automaton *)
  start_state : Varset.t;
  accept_state : Varset.t;
  state_list : Varset.t list;
  out : (Varset.t, transition list) Hashtbl.t;
}

let is_loop tr = Varset.equal tr.src tr.tgt

(* Θδ for a transition binding [v] in a state whose bound variables
   (including the preceding sets' variables) are [ctx]: all conditions that
   mention v and whose other side is a constant, v itself, or a variable in
   ctx (Sec. 4.2.1). *)
let conds_for p v ctx =
  List.filter
    (fun c ->
      Condition.mentions c v
      &&
      match Condition.other_var c v with
      | None -> true
      | Some v' -> Varset.mem v' ctx)
    (Pattern.positive_conditions p)

let index_transitions transitions =
  let out = Hashtbl.create 64 in
  List.iter
    (fun tr ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt out tr.src) in
      Hashtbl.replace out tr.src (existing @ [ tr ]))
    transitions;
  out

let of_set_pattern p i =
  let set_vars = Pattern.set_vars p i in
  let prefix =
    Varset.of_list
      (List.concat_map (Pattern.set_vars p)
         (List.init i Fun.id))
  in
  let full = Varset.of_list set_vars in
  let states = Varset.subsets full in
  let transitions =
    List.concat_map
      (fun q ->
        let advancing =
          List.filter_map
            (fun v ->
              if Varset.mem v q then None
              else
                let tgt = Varset.add v q in
                let ctx = Varset.union prefix tgt in
                Some { src = q; var = v; tgt; conds = conds_for p v ctx })
            set_vars
        in
        let loops =
          List.filter_map
            (fun v ->
              if Varset.mem v q && Pattern.is_group p v then
                let ctx = Varset.union prefix q in
                Some { src = q; var = v; tgt = q; conds = conds_for p v ctx }
              else None)
            set_vars
        in
        advancing @ loops)
      states
  in
  {
    pattern = p;
    segment = full;
    start_state = Varset.empty;
    accept_state = full;
    state_list = List.sort Varset.compare states;
    out = index_transitions transitions;
  }

let transitions a =
  List.concat_map
    (fun q -> Option.value ~default:[] (Hashtbl.find_opt a.out q))
    a.state_list

let time_constraints ~var ~preceding =
  List.map
    (fun v' ->
      Condition.make_var ~var ~field:Schema.Field.Timestamp Predicate.Gt
        ~var':v' ~field':Schema.Field.Timestamp)
    (Varset.to_list preceding)

let concat n1 n2 =
  if not (n1.pattern == n2.pattern) then
    invalid_arg "Automaton.concat: automata of different patterns";
  if not (Varset.is_empty (Varset.inter n1.segment n2.segment)) then
    invalid_arg "Automaton.concat: overlapping variable segments";
  let rename q = Varset.union q n1.segment in
  let renamed_states =
    List.filter_map
      (fun q ->
        let q' = rename q in
        (* The renamed start state of n2 coincides with n1's accepting
           state; keep a single copy. *)
        if Varset.equal q' n1.accept_state then None else Some q')
      n2.state_list
  in
  let renamed_transitions =
    List.map
      (fun tr ->
        let entering = Varset.equal tr.src n2.start_state in
        let conds =
          if entering then
            tr.conds @ time_constraints ~var:tr.var ~preceding:n1.segment
          else tr.conds
        in
        { src = rename tr.src; var = tr.var; tgt = rename tr.tgt; conds })
      (transitions n2)
  in
  {
    pattern = n1.pattern;
    segment = Varset.union n1.segment n2.segment;
    start_state = n1.start_state;
    accept_state = rename n2.accept_state;
    state_list = List.sort Varset.compare (n1.state_list @ renamed_states);
    out = index_transitions (transitions n1 @ renamed_transitions);
  }

(* Result-preserving reduction: drop the given transitions, then any
   state no longer reachable from the start state (such states hold no
   instance, ever, so removing them and their outgoing transitions is
   pure bookkeeping). The start and accepting states are always kept.
   Returns the automaton itself — physically — when nothing is dead, so
   downstream consumers can detect "analysis changed nothing" with [==]. *)
let prune a ~dead =
  let all =
    List.concat_map
      (fun q -> Option.value ~default:[] (Hashtbl.find_opt a.out q))
      a.state_list
  in
  let kept = List.filter (fun tr -> not (dead tr)) all in
  if List.length kept = List.length all then a
  else begin
    let out = index_transitions kept in
    let reachable = Hashtbl.create 64 in
    let rec visit q =
      if not (Hashtbl.mem reachable q) then begin
        Hashtbl.add reachable q ();
        List.iter
          (fun tr -> visit tr.tgt)
          (Option.value ~default:[] (Hashtbl.find_opt out q))
      end
    in
    visit a.start_state;
    let keep_state q =
      Hashtbl.mem reachable q
      || Varset.equal q a.start_state
      || Varset.equal q a.accept_state
    in
    let kept = List.filter (fun tr -> Hashtbl.mem reachable tr.src) kept in
    {
      a with
      state_list = List.filter keep_state a.state_list;
      out = index_transitions kept;
    }
  end

let of_pattern p =
  let segments = List.init (Pattern.n_sets p) (of_set_pattern p) in
  match segments with
  | [] -> invalid_arg "Automaton.of_pattern: pattern without sets"
  | first :: rest -> List.fold_left concat first rest

let pattern a = a.pattern

let tau a = Pattern.tau a.pattern

let states a = a.state_list

let n_states a = List.length a.state_list

let start a = a.start_state

let accept a = a.accept_state

let n_transitions a = List.length (transitions a)

let outgoing a q = Option.value ~default:[] (Hashtbl.find_opt a.out q)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let n_paths a =
  let p = a.pattern in
  List.fold_left
    (fun acc i -> acc * factorial (List.length (Pattern.set_vars p i)))
    1
    (List.init (Pattern.n_sets p) Fun.id)

let pp ppf a =
  let p = a.pattern in
  let name_of = Pattern.var_name p in
  let pp_state = Varset.pp ~name_of in
  Format.fprintf ppf "@[<v>states: %d, transitions: %d@,start: %a, accept: %a@,"
    (n_states a) (n_transitions a) pp_state a.start_state pp_state
    a.accept_state;
  List.iter
    (fun q ->
      List.iter
        (fun tr ->
          Format.fprintf ppf "  %a --%s{%a}--> %a@," pp_state tr.src
            (name_of tr.var)
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
               (Condition.pp (Pattern.schema p) ~name_of))
            tr.conds pp_state tr.tgt)
        (outgoing a q))
    a.state_list;
  Format.fprintf ppf "@]"
