(** Substitutions γ = {v1/e1, …, vn/en} — finite sets of variable/event
    bindings (Sec. 3.2) — together with the checks of Definition 2.

    Conditions 1–3 of Definition 2 (Θ-satisfaction, inter-set order, time
    window) are decidable on a single substitution and are exposed as
    predicates. Conditions 4 (skip-till-next-match) and 5 (MAXIMAL mode
    with greedy quantifier) quantify over the set Γ of all substitutions
    satisfying 1–3; {!finalize} applies them relative to a candidate set,
    which is how both the SES engine and the brute-force baseline
    post-process their raw emissions. *)

open Ses_event
open Ses_pattern

type binding = int * Event.t
(** Variable id and the event bound to it. *)

type t = binding list
(** Bindings in the order they were added (chronological). The list is the
    paper's γ; treat it as a set. *)

val canonical : t -> (int * int) list
(** Sorted (variable id, event sequence number) pairs — the set identity of
    a substitution. {!finalize} computes this once per candidate (and keeps
    it alongside the substitution for the whole pass) rather than once per
    comparison; callers holding many substitutions should do the same. *)

val compare_canonical : (int * int) list -> (int * int) list -> int
(** Lexicographic order over canonical forms (pairs compared by variable
    id, then sequence number) — the typed comparator every sort of
    {!canonical} results must use instead of polymorphic [compare]. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** Set inclusion of bindings — a single merge over the two sorted
    canonical forms. *)

val proper_subset : t -> t -> bool

val bindings_of : t -> int -> Event.t list
(** Events bound to a variable, in binding order. *)

val events : t -> Event.t list

val min_binding : t -> binding option
(** The paper's minT(γ): the binding with the chronologically earliest
    event (ties broken by sequence number, which the total order on events
    makes unambiguous). *)

val min_ts : t -> Time.t option

val span : t -> Time.duration
(** Time spanned between earliest and latest bound event. *)

(** {1 Definition 2, conditions 1–3} *)

val well_formed : Pattern.t -> t -> bool
(** Each variable's binding count lies within its quantifier bounds
    (exactly one for singletons, ≥ 1 for v+, within [min,max] for
    v\{min,max\}), and all events are distinct. *)

val satisfies_theta : Pattern.t -> t -> bool
(** Condition 1: Θγ is satisfied (full decomposition over group bindings). *)

val satisfies_order : Pattern.t -> t -> bool
(** Condition 2: events of set Vi occur strictly before events of Vj for
    i < j. *)

val satisfies_window : Pattern.t -> t -> bool
(** Condition 3: all events within τ of each other. *)

val satisfies_1_3 : Pattern.t -> t -> bool

val satisfies_negations : Pattern.t -> Event.t array -> t -> bool
(** Negation extension: for each (boundary, v) of [Pattern.negations],
    no event of the relation (given as its chronologically ordered event
    array) whose sequence number lies strictly between the last bound
    event of sets ≤ boundary and the first bound event of later sets —
    and whose timestamp is still inside the match's τ window — may
    satisfy all of v's conditions under the substitution. For a trailing
    guard (boundary = last set) the "first bound event of later sets"
    is +∞, so the guard covers the remainder of the window. Vacuously
    true for paper patterns.

    The (last bound, first after) sequence window is computed once per
    boundary and the array is scanned only inside it (located by binary
    search), not end to end per negation. *)

(** {1 Definition 2, conditions 4–5 over a candidate set} *)

val maximal_within : candidates:t list -> t -> bool
(** Condition 5 relative to [candidates]: no candidate with the same
    minT-binding strictly contains the substitution. *)

val skip_till_next_within : candidates:t list -> t -> bool
(** Condition 4 relative to [candidates]: there is no pair v/e, v'/e' in γ
    and candidate γ' with v'/e'' ∈ γ' such that e.T < e''.T < e'.T and
    v'/e'' ∉ γ. *)

(** How conditions 4–5 are applied to the raw emissions.

    [Literal] transcribes Definition 2 exactly (condition 4 with Γ
    approximated by the candidate set, condition 5 restricted to equal
    minT). The literal reading is self-contradictory on the paper's own
    running example: condition 4 rejects the intended patient-2 match
    {p+/e6, d/e7, c/e8, p+/e10, p+/e11, b/e13} because patient 1's binding
    p+/e9 falls chronologically between c/e8 and p+/e10 in another valid
    substitution, while condition 5 fails to remove the late-start subset
    {d/e7, c/e8, p+/e10, p+/e11, b/e13} (its minT differs). It is provided
    for study.

    [Operational] (the default) implements what the algorithm and the
    MAXIMAL-mode prose actually compute: deduplication plus global
    subsumption — a substitution strictly contained in another candidate is
    discarded, regardless of minT. On the running example this yields
    exactly the two matches the paper reports. *)
type policy =
  | Operational
  | Literal

val finalize : ?policy:policy -> Pattern.t -> t list -> t list
(** Deduplicates (by {!canonical}) and applies the chosen policy relative
    to the deduplicated candidate set. The result is sorted by
    (minT, canonical) for deterministic output.

    Each candidate's canonical form and minT binding are computed once.
    [Operational] subsumption consults a hash index from bindings to the
    candidates containing them (every strict superset of γ must contain
    γ's rarest binding), and [Literal] maximality compares only within
    groups sharing a minT binding — near-linear in practice instead of
    all-pairs with per-comparison re-sorting. *)

val pp : Pattern.t -> Format.formatter -> t -> unit
(** Prints like the paper, e.g. [{c/e1, d/e3, p+/e4, p+/e9, b/e12}]. *)
