type t = {
  names : string array;
  types : Value.ty array;
}

let make attrs =
  let rec check_dups seen = function
    | [] -> Ok ()
    | (name, _) :: rest ->
        if name = "" then Error "schema: empty attribute name"
        else if name = "T" then
          Error "schema: attribute name \"T\" is reserved for the timestamp"
        else if List.mem name seen then
          Error (Printf.sprintf "schema: duplicate attribute %S" name)
        else check_dups (name :: seen) rest
  in
  match check_dups [] attrs with
  | Error _ as e -> e
  | Ok () ->
      Ok
        {
          names = Array.of_list (List.map fst attrs);
          types = Array.of_list (List.map snd attrs);
        }

let make_exn attrs =
  match make attrs with Ok s -> s | Error msg -> invalid_arg msg

let ty_of_string = function
  | "int" -> Ok Value.Tint
  | "float" -> Ok Value.Tfloat
  | "str" | "string" -> Ok Value.Tstr
  | other ->
      Error
        (Printf.sprintf "schema: unknown type %S (expected int, float or string)"
           other)

let of_string spec =
  let parse_attr chunk =
    let chunk = String.trim chunk in
    match String.index_opt chunk ':' with
    | None ->
        Error
          (Printf.sprintf "schema: attribute %S lacks a type (NAME:TYPE)" chunk)
    | Some i ->
        let name = String.trim (String.sub chunk 0 i) in
        let ty =
          String.trim (String.sub chunk (i + 1) (String.length chunk - i - 1))
        in
        Result.map (fun ty -> (name, ty)) (ty_of_string ty)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | chunk :: rest -> (
        match parse_attr chunk with
        | Error _ as e -> e
        | Ok attr -> collect (attr :: acc) rest)
  in
  match collect [] (String.split_on_char ',' spec) with
  | Error _ as e -> e
  | Ok attrs -> make attrs

let arity s = Array.length s.names

let attributes s =
  Array.to_list (Array.map2 (fun n ty -> (n, ty)) s.names s.types)

let index_of s name =
  let rec find i =
    if i >= Array.length s.names then None
    else if s.names.(i) = name then Some i
    else find (i + 1)
  in
  find 0

let name_of s i = s.names.(i)

let type_of s i = s.types.(i)

let equal a b = a.names = b.names && a.types = b.types

let pp ppf s =
  Format.fprintf ppf "(@[%a,@ T@])"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (n, ty) -> Format.fprintf ppf "%s:%a" n Value.pp_ty ty))
    (attributes s)

module Field = struct
  type nonrec schema = t

  type t =
    | Attr of int
    | Timestamp

  let equal a b =
    match a, b with
    | Attr i, Attr j -> i = j
    | Timestamp, Timestamp -> true
    | (Attr _ | Timestamp), _ -> false

  let compare a b =
    match a, b with
    | Attr i, Attr j -> Int.compare i j
    | Attr _, Timestamp -> -1
    | Timestamp, Attr _ -> 1
    | Timestamp, Timestamp -> 0

  let type_of (s : schema) = function
    | Attr i -> s.types.(i)
    | Timestamp -> Value.Tint

  let resolve (s : schema) name =
    if name = "T" then Ok Timestamp
    else
      match index_of s name with
      | Some i -> Ok (Attr i)
      | None -> Error (Printf.sprintf "unknown attribute %S" name)

  let name (s : schema) = function
    | Attr i -> s.names.(i)
    | Timestamp -> "T"

  let pp s ppf f = Format.pp_print_string ppf (name s f)
end
