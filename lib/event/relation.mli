(** Event relations: finite, chronologically ordered sets of events over a
    common schema (Sec. 3.1). The timestamp defines the order; ties are
    broken by insertion order, which keeps the order total as the paper
    assumes. *)

type t

val of_rows : Schema.t -> (Value.t array * Time.t) list -> (t, string) result
(** Builds a relation from payload/timestamp rows. Rows are sorted
    chronologically (stably) and assigned sequence numbers in that order.
    Fails if a payload does not match the schema. *)

val of_rows_exn : Schema.t -> (Value.t array * Time.t) list -> t

val schema : t -> Schema.t

val cardinality : t -> int

val is_empty : t -> bool

val get : t -> int -> Event.t
(** [get r i] is the event with sequence number [i]. *)

val events : t -> Event.t array
(** The events in chronological order. The array is fresh. *)

val to_seq : t -> Event.t Seq.t
(** Chronological scan — the engine's input interface. *)

val iter : (Event.t -> unit) -> t -> unit

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val filter : (Event.t -> bool) -> t -> t
(** Keeps matching events; sequence numbers are reassigned densely. *)

val append : t -> t -> t
(** Concatenates and re-sorts two relations over equal schemas; raises
    [Invalid_argument] on schema mismatch. *)

val first_ts : t -> Time.t option

val last_ts : t -> Time.t option

val duration : t -> Time.duration
(** Span between the first and last event; 0 for empty relations. *)

val window_size : t -> Time.duration -> int
(** [window_size r tau] is the window size W of Definition 5: the maximal
    number of events inside a time window of width [tau] sliding over the
    relation event by event (window membership uses |e.T - e'.T| <= tau). *)

val pp : Format.formatter -> t -> unit
