(** Events: tuples over a schema plus an occurrence timestamp (Sec. 3.1).

    Every event additionally carries a unique sequence number [seq] assigned
    by the relation that owns it; it identifies the event within a run (the
    [e1 … e14] names of the paper's Figure 1) and breaks timestamp ties
    deterministically. *)

type t = private {
  seq : int;  (** Position of the event in its relation, starting at 0. *)
  payload : Value.t array;  (** Attribute values, in schema order. *)
  ts : Time.t;  (** Occurrence time T. *)
}

val make : seq:int -> ts:Time.t -> Value.t array -> t

val seq : t -> int

val ts : t -> Time.t

val get : t -> Schema.Field.t -> Value.t
(** Field access; [Timestamp] is returned as an [Int]. *)

val attr : t -> int -> Value.t

val typed_ok : Schema.t -> t -> bool
(** Whether the payload arity and value types agree with the schema. *)

val compare_chrono : t -> t -> int
(** Chronological order: by timestamp, then by sequence number. *)

val equal : t -> t -> bool
(** Identity within a relation: equal sequence numbers. *)

val pp : Schema.t -> Format.formatter -> t -> unit
(** Renders as [e<seq+1>{A=v, …, T=t}], mirroring the paper's e1, e2, … *)

val name : t -> string
(** ["e<seq+1>"]. *)
