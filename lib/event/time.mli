(** Discrete, totally ordered time domain (Sec. 3.1 of the paper).

    Timestamps are plain integers counting time units since an arbitrary
    epoch. The running example of the paper uses hours; nothing in the
    library depends on the unit. Durations are differences of timestamps. *)

type t = int
(** A point on the discrete time axis. *)

type duration = int
(** A non-negative span between two timestamps, in the same unit. *)

val compare : t -> t -> int
(** Total order on timestamps. *)

val equal : t -> t -> bool

val ( <. ) : t -> t -> bool
(** Strict chronological precedence. *)

val ( <=. ) : t -> t -> bool

val span : t -> t -> duration
(** [span a b] is the absolute distance |a - b|. *)

val add : t -> duration -> t

val min : t -> t -> t

val max : t -> t -> t

val hours : int -> duration
(** Identity; documents intent when the unit is hours. *)

val days : int -> duration
(** [days n] is [24 * n]; the paper's τ = 264 is [days 11]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [day d, h:00] assuming an hour granularity — matches how the
    paper presents the chemotherapy data — plus the raw value. *)

val pp_raw : Format.formatter -> t -> unit
(** Prints the bare integer. *)
