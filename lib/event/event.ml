type t = {
  seq : int;
  payload : Value.t array;
  ts : Time.t;
}

let make ~seq ~ts payload = { seq; payload; ts }

let seq e = e.seq

let ts e = e.ts

let get e = function
  | Schema.Field.Attr i -> e.payload.(i)
  | Schema.Field.Timestamp -> Value.Int e.ts

let attr e i = e.payload.(i)

let typed_ok schema e =
  Array.length e.payload = Schema.arity schema
  && Array.for_all (fun b -> b)
       (Array.mapi
          (fun i v -> Value.ty_equal (Value.type_of v) (Schema.type_of schema i))
          e.payload)

let compare_chrono a b =
  let c = Time.compare a.ts b.ts in
  if c <> 0 then c else Int.compare a.seq b.seq

let equal a b = a.seq = b.seq

let name e = Printf.sprintf "e%d" (e.seq + 1)

let pp schema ppf e =
  Format.fprintf ppf "%s{@[" (name e);
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s=%a" (Schema.name_of schema i) Value.pp v)
    e.payload;
  Format.fprintf ppf ",@ T=%a@]}" Time.pp_raw e.ts
