(** Comparison operators φ ∈ {=, ≠, <, ≤, >, ≥} and atomic predicates.

    Besides evaluation, this module decides satisfiability of conjunctions
    of two atomic comparisons over the same attribute, which is what the
    paper's mutual-exclusivity notion (Definition 6) reduces to. *)

type op =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

val all_ops : op list

val eval : op -> Value.t -> Value.t -> bool
(** [eval op a b] is [a op b]. Values of incompatible types compare as
    unequal: [Eq] is [false], [Neq] is [true], and the order operators are
    all [false]. *)

val negate : op -> op
(** Logical complement: [negate Lt = Ge], etc. *)

val flip : op -> op
(** Operand swap: [a op b] iff [b (flip op) a]. *)

val conjunction_satisfiable : op * Value.t -> op * Value.t -> bool
(** [conjunction_satisfiable (op1, c1) (op2, c2)] decides whether some value
    [x] satisfies both [x op1 c1] and [x op2 c2]. The order is treated as
    dense, which makes the answer exact for floats and strings and
    conservative (never wrongly unsatisfiable) for integers. Predicates over
    incompatible constant types are each individually satisfiable by values
    of the matching type, hence the conjunction is satisfiable only if both
    admit values of one common type; with incompatible types the result is
    [false]. *)

(** Typed abstract domains for conjunctions of constant comparisons.

    [Domain.of_atoms ty atoms] conjoins any number of [(op, constant)]
    atoms over a field of type [ty] into an interval-with-exclusions
    abstract value — the n-ary, type-aware generalization of
    {!conjunction_satisfiable}. Knowing the type makes integer reasoning
    exact (x > 3 becomes x ≥ 4, and a fully-excluded finite integer range
    is detected as empty), keeps floats and strings dense, floors the
    string domain at [""], and treats constants of a type incompatible
    with the field like {!eval} does: [Neq] always holds, everything else
    never. Every operation is sound with respect to {!eval}: a domain is
    only [is_empty] when no value of the field's type satisfies all
    atoms. *)
module Domain : sig
  type nonrec op = op

  type t

  val top : Value.ty -> t
  (** All values of the type. *)

  val bottom : Value.ty -> t
  (** The empty domain. *)

  val narrow : t -> op * Value.t -> t
  (** Conjoin one atom. *)

  val of_atoms : Value.ty -> (op * Value.t) list -> t

  val inter : t -> t -> t
  (** Intersection (the types should agree). *)

  val is_empty : t -> bool
  (** No value of the field type satisfies the conjunction. *)

  val is_top : t -> bool

  val mem : t -> Value.t -> bool
  (** Whether a value of the field's type lies in the domain. *)

  val constant : t -> Value.t option
  (** The single point when the domain has collapsed to [v = c]. *)

  val implies : t -> op * Value.t -> bool
  (** [implies d atom]: every value in [d] satisfies [atom] — i.e. the
      atom is subsumed by the conjunction that built [d]. *)

  val propagate : Value.ty -> op -> t -> t
  (** [propagate ty op d] over-approximates [{x : ∃ y ∈ d. x op y}], the
      domain a field of type [ty] on the left of [op] is confined to when
      the right side ranges over [d] — the transfer function for
      inter-variable condition edges [v.A φ v'.A']. *)

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string
end

val pp : Format.formatter -> op -> unit

val to_string : op -> string

val of_string : string -> op option
(** Recognizes [=], [<>], [!=], [<], [<=], [>], [>=]. *)
