(** Comparison operators φ ∈ {=, ≠, <, ≤, >, ≥} and atomic predicates.

    Besides evaluation, this module decides satisfiability of conjunctions
    of two atomic comparisons over the same attribute, which is what the
    paper's mutual-exclusivity notion (Definition 6) reduces to. *)

type op =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

val all_ops : op list

val eval : op -> Value.t -> Value.t -> bool
(** [eval op a b] is [a op b]. Values of incompatible types compare as
    unequal: [Eq] is [false], [Neq] is [true], and the order operators are
    all [false]. *)

val negate : op -> op
(** Logical complement: [negate Lt = Ge], etc. *)

val flip : op -> op
(** Operand swap: [a op b] iff [b (flip op) a]. *)

val conjunction_satisfiable : op * Value.t -> op * Value.t -> bool
(** [conjunction_satisfiable (op1, c1) (op2, c2)] decides whether some value
    [x] satisfies both [x op1 c1] and [x op2 c2]. The order is treated as
    dense, which makes the answer exact for floats and strings and
    conservative (never wrongly unsatisfiable) for integers. Predicates over
    incompatible constant types are each individually satisfiable by values
    of the matching type, hence the conjunction is satisfiable only if both
    admit values of one common type; with incompatible types the result is
    [false]. *)

val pp : Format.formatter -> op -> unit

val to_string : op -> string

val of_string : string -> op option
(** Recognizes [=], [<>], [!=], [<], [<=], [>], [>=]. *)
