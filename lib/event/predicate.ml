type op =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

let all_ops = [ Eq; Neq; Lt; Le; Gt; Ge ]

let eval op a b =
  let compatible = Value.ty_compatible (Value.type_of a) (Value.type_of b) in
  if not compatible then op = Neq
  else
    let c = Value.compare a b in
    match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

let negate = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let flip = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

(* Intervals over a dense totally ordered domain, used to decide
   satisfiability of conjunctions of atomic comparisons. A bound of [None]
   is infinite; [Some (v, incl)] is a finite bound that is inclusive iff
   [incl]. The string domain is bounded below by [""], which is the one
   non-dense corner that matters in practice (x < "" is unsatisfiable). *)
type bound = (Value.t * bool) option

let interval_of op c : bound * bound =
  match op with
  | Eq -> (Some (c, true), Some (c, true))
  | Lt -> (None, Some (c, false))
  | Le -> (None, Some (c, true))
  | Gt -> (Some (c, false), None)
  | Ge -> (Some (c, true), None)
  | Neq -> invalid_arg "interval_of: Neq is not an interval"

let tighten_lower a b =
  match a, b with
  | None, x | x, None -> x
  | Some (va, ia), Some (vb, ib) ->
      let c = Value.compare va vb in
      if c > 0 then a
      else if c < 0 then b
      else Some (va, ia && ib)

let tighten_upper a b =
  match a, b with
  | None, x | x, None -> x
  | Some (va, ia), Some (vb, ib) ->
      let c = Value.compare va vb in
      if c < 0 then a
      else if c > 0 then b
      else Some (va, ia && ib)

let nonempty ~strings (lo, hi) =
  let lo = if strings && lo = None then Some (Value.Str "", true) else lo in
  match lo, hi with
  | None, _ | _, None -> true
  | Some (vl, il), Some (vh, ih) ->
      let c = Value.compare vl vh in
      c < 0 || (c = 0 && il && ih)

let satisfiable_alone (op, c) =
  match op with
  | Neq -> true
  | Eq | Lt | Le | Gt | Ge ->
      let strings = Value.type_of c = Value.Tstr in
      nonempty ~strings (interval_of op c)

let conjunction_satisfiable (op1, c1) (op2, c2) =
  let t1 = Value.type_of c1 and t2 = Value.type_of c2 in
  if not (Value.ty_compatible t1 t2) then
    (* A witness must live in one constant's domain; against the other
       constant only Neq can hold. *)
    (op1 = Neq && satisfiable_alone (op2, c2))
    || (op2 = Neq && satisfiable_alone (op1, c1))
  else
    let strings = t1 = Value.Tstr in
    match op1, op2 with
    | Neq, Neq -> true
    | Neq, _ ->
        satisfiable_alone (op2, c2) && not (op2 = Eq && Value.equal c1 c2)
    | _, Neq ->
        satisfiable_alone (op1, c1) && not (op1 = Eq && Value.equal c1 c2)
    | (Eq | Lt | Le | Gt | Ge), (Eq | Lt | Le | Gt | Ge) ->
        let lo1, hi1 = interval_of op1 c1 and lo2, hi2 = interval_of op2 c2 in
        nonempty ~strings (tighten_lower lo1 lo2, tighten_upper hi1 hi2)

let to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp ppf op = Format.pp_print_string ppf (to_string op)

let of_string = function
  | "=" | "==" -> Some Eq
  | "<>" | "!=" -> Some Neq
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None
