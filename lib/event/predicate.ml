type op =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

let all_ops = [ Eq; Neq; Lt; Le; Gt; Ge ]

let eval op a b =
  let compatible = Value.ty_compatible (Value.type_of a) (Value.type_of b) in
  if not compatible then op = Neq
  else
    let c = Value.compare a b in
    match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

let negate = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let flip = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

(* Intervals over a dense totally ordered domain, used to decide
   satisfiability of conjunctions of atomic comparisons. A bound of [None]
   is infinite; [Some (v, incl)] is a finite bound that is inclusive iff
   [incl]. The string domain is bounded below by [""], which is the one
   non-dense corner that matters in practice (x < "" is unsatisfiable). *)
type bound = (Value.t * bool) option

let interval_of op c : bound * bound =
  match op with
  | Eq -> (Some (c, true), Some (c, true))
  | Lt -> (None, Some (c, false))
  | Le -> (None, Some (c, true))
  | Gt -> (Some (c, false), None)
  | Ge -> (Some (c, true), None)
  | Neq -> invalid_arg "interval_of: Neq is not an interval"

let tighten_lower a b =
  match a, b with
  | None, x | x, None -> x
  | Some (va, ia), Some (vb, ib) ->
      let c = Value.compare va vb in
      if c > 0 then a
      else if c < 0 then b
      else Some (va, ia && ib)

let tighten_upper a b =
  match a, b with
  | None, x | x, None -> x
  | Some (va, ia), Some (vb, ib) ->
      let c = Value.compare va vb in
      if c < 0 then a
      else if c > 0 then b
      else Some (va, ia && ib)

let nonempty ~strings (lo, hi) =
  let lo = if strings && lo = None then Some (Value.Str "", true) else lo in
  match lo, hi with
  | None, _ | _, None -> true
  | Some (vl, il), Some (vh, ih) ->
      let c = Value.compare vl vh in
      c < 0 || (c = 0 && il && ih)

let satisfiable_alone (op, c) =
  match op with
  | Neq -> true
  | Eq | Lt | Le | Gt | Ge ->
      let strings = Value.type_of c = Value.Tstr in
      nonempty ~strings (interval_of op c)

let conjunction_satisfiable (op1, c1) (op2, c2) =
  let t1 = Value.type_of c1 and t2 = Value.type_of c2 in
  if not (Value.ty_compatible t1 t2) then
    (* A witness must live in one constant's domain; against the other
       constant only Neq can hold. *)
    (op1 = Neq && satisfiable_alone (op2, c2))
    || (op2 = Neq && satisfiable_alone (op1, c1))
  else
    let strings = t1 = Value.Tstr in
    match op1, op2 with
    | Neq, Neq -> true
    | Neq, _ ->
        satisfiable_alone (op2, c2) && not (op2 = Eq && Value.equal c1 c2)
    | _, Neq ->
        satisfiable_alone (op1, c1) && not (op1 = Eq && Value.equal c1 c2)
    | (Eq | Lt | Le | Gt | Ge), (Eq | Lt | Le | Gt | Ge) ->
        let lo1, hi1 = interval_of op1 c1 and lo2, hi2 = interval_of op2 c2 in
        nonempty ~strings (tighten_lower lo1 lo2, tighten_upper hi1 hi2)

(* A typed n-ary generalization of the pairwise test: an abstract value
   for "all runtime values a field could take under a conjunction of
   constant comparisons". The representation is the interval [lo, hi]
   minus the finitely many [Neq] exclusions that fall inside it. Knowing
   the field type makes integer reasoning exact (Gt 3 tightens to Ge 4),
   which the typeless pairwise test must not do — an int constant can
   lawfully be compared against a float-typed field, whose domain is
   dense. *)
module Domain = struct
  type nonrec op = op

  type t = {
    ty : Value.ty;
    lo : bound;
    hi : bound;
    excl : Value.t list;
    empty : bool;
  }

  let compatible ty v = Value.ty_compatible (Value.type_of v) ty

  (* Integer fields only take integral values: exclusive [Int] bounds
     tighten to the adjacent inclusive one. Bounds of other numeric types
     against an int field stay dense (conservative). *)
  let norm_lower ty = function
    | Some (Value.Int n, false) when ty = Value.Tint && n < max_int ->
        Some (Value.Int (n + 1), true)
    | b -> b

  let norm_upper ty = function
    | Some (Value.Int n, false) when ty = Value.Tint && n > min_int ->
        Some (Value.Int (n - 1), true)
    | b -> b

  let within (lo, hi) v =
    (match lo with
    | None -> true
    | Some (l, il) ->
        let c = Value.compare v l in
        c > 0 || (c = 0 && il))
    && match hi with
       | None -> true
       | Some (h, ih) ->
           let c = Value.compare v h in
           c < 0 || (c = 0 && ih)

  (* Re-establish the invariants after any bound/exclusion change: string
     domains are floored at [""], int bounds are integral, exclusions
     outside the bounds are dropped, and [empty] is decided — including
     the exact finite-integer-range check that pure interval reasoning
     misses (x ≥ 1 ∧ x ≤ 2 ∧ x ≠ 1 ∧ x ≠ 2). *)
  let decide d =
    if d.empty then d
    else begin
      let lo = norm_lower d.ty d.lo and hi = norm_upper d.ty d.hi in
      let lo =
        if d.ty = Value.Tstr && lo = None then Some (Value.Str "", true)
        else lo
      in
      let excl =
        List.filter (fun v -> compatible d.ty v && within (lo, hi) v) d.excl
      in
      let d = { d with lo; hi; excl } in
      if not (nonempty ~strings:false (lo, hi)) then { d with empty = true }
      else
        let excluded v = List.exists (Value.equal v) excl in
        match lo, hi with
        | Some (l, true), Some (h, true) when Value.equal l h ->
            if excluded l then { d with empty = true } else d
        | Some (Value.Int a, true), Some (Value.Int b, true)
          when d.ty = Value.Tint && b - a <= 64 ->
            let rec all_excluded k =
              k > b || (excluded (Value.Int k) && all_excluded (k + 1))
            in
            if excl <> [] && all_excluded a then { d with empty = true } else d
        | _ -> d
    end

  let top ty = { ty; lo = None; hi = None; excl = []; empty = false }

  let bottom ty = { (top ty) with empty = true }

  let is_empty d = d.empty

  let is_top d =
    (not d.empty) && d.lo = None && d.hi = None && d.excl = []

  let narrow d (op, c) =
    if d.empty then d
    else if not (compatible d.ty c) then
      (* Every value of the field's type compares [Neq] to [c]; the order
         operators and [Eq] never hold (cf. {!eval}). *)
      if op = Neq then d else bottom d.ty
    else
      match op with
      | Neq -> decide { d with excl = c :: d.excl }
      | Eq | Lt | Le | Gt | Ge ->
          let lo, hi = interval_of op c in
          decide
            {
              d with
              lo = tighten_lower d.lo (norm_lower d.ty lo);
              hi = tighten_upper d.hi (norm_upper d.ty hi);
            }

  let of_atoms ty atoms = List.fold_left narrow (top ty) atoms

  let inter a b =
    if a.empty || b.empty then bottom a.ty
    else
      decide
        {
          a with
          lo = tighten_lower a.lo b.lo;
          hi = tighten_upper a.hi b.hi;
          excl = a.excl @ b.excl;
        }

  let mem d v =
    (not d.empty)
    && compatible d.ty v
    && within (d.lo, d.hi) v
    && not (List.exists (Value.equal v) d.excl)

  let constant d =
    if d.empty then None
    else
      match d.lo, d.hi with
      | Some (l, true), Some (h, true) when Value.equal l h -> Some l
      | _ -> None

  (* Containment of [d]'s bounds in the region of one atom; exclusions
     are ignored on the left (sound: a subset of an implying set still
     implies). *)
  let implies d (op, c) =
    d.empty
    ||
    if not (compatible d.ty c) then op = Neq
    else
      match op with
      | Neq -> not (mem d c)
      | Eq | Lt | Le | Gt | Ge ->
          let lo_r, hi_r = interval_of op c in
          let lo_r = norm_lower d.ty lo_r and hi_r = norm_upper d.ty hi_r in
          let lower_contained =
            match lo_r, d.lo with
            | None, _ -> true
            | Some _, None -> false
            | Some (vr, ir), Some (v, i) ->
                let cmp = Value.compare v vr in
                cmp > 0 || (cmp = 0 && (ir || not i))
          in
          let upper_contained =
            match hi_r, d.hi with
            | None, _ -> true
            | Some _, None -> false
            | Some (vr, ir), Some (v, i) ->
                let cmp = Value.compare v vr in
                cmp < 0 || (cmp = 0 && (ir || not i))
          in
          lower_contained && upper_contained

  (* [propagate ty op d] over-approximates {x : ∃ y ∈ d. x op y} — the
     values a field of type [ty] can take on the left of [op] when the
     right side ranges over [d]. *)
  let propagate ty op d =
    if d.empty then bottom ty
    else if not (Value.ty_compatible d.ty ty) then
      if op = Neq then top ty else bottom ty
    else
      match op with
      | Eq -> decide { d with ty; empty = false }
      | Neq -> (
          (* Unless d is a single point, any x finds some y ≠ x. *)
          match constant d with
          | Some c when d.excl = [] -> decide { (top ty) with excl = [ c ] }
          | Some _ | None -> top ty)
      | Lt ->
          let hi =
            match d.hi with Some (v, _) -> Some (v, false) | None -> None
          in
          decide { (top ty) with hi }
      | Le -> decide { (top ty) with hi = d.hi }
      | Gt ->
          let lo =
            match d.lo with Some (v, _) -> Some (v, false) | None -> None
          in
          decide { (top ty) with lo }
      | Ge -> decide { (top ty) with lo = d.lo }

  let pp ppf d =
    if d.empty then Format.pp_print_string ppf "(empty)"
    else begin
      (match constant d with
      | Some c -> Format.fprintf ppf "= %a" Value.pp c
      | None -> (
          (match d.lo, d.hi with
          | None, None -> Format.pp_print_string ppf "unconstrained"
          | _ ->
              (match d.lo with
              | None -> Format.pp_print_string ppf "(-inf"
              | Some (v, i) ->
                  Format.fprintf ppf "%c%a" (if i then '[' else '(') Value.pp v);
              Format.pp_print_string ppf ", ";
              match d.hi with
              | None -> Format.pp_print_string ppf "+inf)"
              | Some (v, i) ->
                  Format.fprintf ppf "%a%c" Value.pp v (if i then ']' else ')'))));
      match d.excl with
      | [] -> ()
      | vs ->
          Format.fprintf ppf " except {%a}"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
               Value.pp)
            (List.sort_uniq Value.compare vs)
    end

  let to_string d = Format.asprintf "%a" pp d
end

let to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp ppf op = Format.pp_print_string ppf (to_string op)

let of_string = function
  | "=" | "==" -> Some Eq
  | "<>" | "!=" -> Some Neq
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None
