type t =
  | Int of int
  | Float of float
  | Str of string

type ty =
  | Tint
  | Tfloat
  | Tstr

let type_of = function
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstr

let ty_equal a b =
  match a, b with
  | Tint, Tint | Tfloat, Tfloat | Tstr, Tstr -> true
  | (Tint | Tfloat | Tstr), _ -> false

let ty_compatible a b =
  match a, b with
  | Tint, (Tint | Tfloat) -> true
  | Tfloat, (Tint | Tfloat) -> true
  | Tstr, Tstr -> true
  | (Tint | Tfloat), Tstr | Tstr, (Tint | Tfloat) -> false

let tag_rank = function
  | Int _ | Float _ -> 0
  | Str _ -> 1

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | (Int _ | Float _ | Str _), _ -> Int.compare (tag_rank a) (tag_rank b)

let equal a b = compare a b = 0

let numeric = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Str _ -> None

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | Str s -> Format.fprintf ppf "'%s'" s

let pp_ty ppf ty =
  Format.pp_print_string ppf
    (match ty with Tint -> "int" | Tfloat -> "float" | Tstr -> "string")

let escape_quotes s =
  if not (String.contains s '\'') then s
  else begin
    let buf = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        Buffer.add_char buf c;
        if c = '\'' then Buffer.add_char buf '\'')
      s;
    Buffer.contents buf
  end

let float_repr x =
  let s = Printf.sprintf "%.12g" x in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ "."

let to_string = function
  | Int x -> string_of_int x
  | Float x -> float_repr x
  | Str s -> "'" ^ escape_quotes s ^ "'"

let of_string ty raw =
  match ty with
  | Tint -> (
      match int_of_string_opt (String.trim raw) with
      | Some x -> Ok (Int x)
      | None -> Error (Printf.sprintf "%S is not an integer" raw))
  | Tfloat -> (
      match float_of_string_opt (String.trim raw) with
      | Some x -> Ok (Float x)
      | None -> Error (Printf.sprintf "%S is not a float" raw))
  | Tstr -> Ok (Str raw)
