type attr = {
  ty : Value.ty;
  cardinality : int;
  histogram : (Value.t * int) list;
  histogram_rows : int;
  complete : bool;
}

type t = {
  rows : int;
  attrs : (string * attr) list;
}

let default_cap = 64

(* --------------------------------------------------------------- *)
(* Accumulation                                                    *)
(* --------------------------------------------------------------- *)

type builder = {
  schema : Schema.t;
  counts : (Value.t, int ref) Hashtbl.t array;
  mutable n : int;
}

let builder schema =
  {
    schema;
    counts = Array.init (Schema.arity schema) (fun _ -> Hashtbl.create 64);
    n = 0;
  }

let observe b (e : Event.t) =
  b.n <- b.n + 1;
  Array.iteri
    (fun i table ->
      let v = e.Event.payload.(i) in
      match Hashtbl.find_opt table v with
      | Some r -> incr r
      | None -> Hashtbl.add table v (ref 1))
    b.counts

(* Most frequent first; ties broken by value order so the listing (and
   the serialized form) is deterministic. *)
let order_entries entries =
  List.sort
    (fun (v, c) (v', c') ->
      if c <> c' then Int.compare c' c else Value.compare v v')
    entries

let finish ?(cap = default_cap) b =
  let attrs =
    List.mapi
      (fun i (name, ty) ->
        let entries =
          order_entries
            (Hashtbl.fold (fun v r acc -> (v, !r) :: acc) b.counts.(i) [])
        in
        let cardinality = List.length entries in
        let histogram = List.filteri (fun j _ -> j < cap) entries in
        let histogram_rows =
          List.fold_left (fun acc (_, c) -> acc + c) 0 histogram
        in
        ( name,
          {
            ty;
            cardinality;
            histogram;
            histogram_rows;
            complete = cardinality <= cap;
          } ))
      (Schema.attributes b.schema)
  in
  { rows = b.n; attrs }

let of_relation ?cap r =
  let b = builder (Relation.schema r) in
  Relation.iter (fun e -> observe b e) r;
  finish ?cap b

(* --------------------------------------------------------------- *)
(* Lookup and estimation                                           *)
(* --------------------------------------------------------------- *)

let rows t = t.rows

let find t name = List.assoc_opt name t.attrs

let estimate_eq t name v =
  match find t name with
  | None -> None
  | Some a -> (
      match List.find_opt (fun (k, _) -> Value.equal k v) a.histogram with
      | Some (_, c) -> Some c
      | None ->
          if a.complete then Some 0
          else
            (* The histogram keeps the most frequent values, so any key
               outside it carries at most the smallest kept count; the
               uniform share of the remainder is the usual estimate. *)
            let rest_rows = t.rows - a.histogram_rows in
            let rest_keys = max 1 (a.cardinality - List.length a.histogram) in
            Some (max 1 (rest_rows / rest_keys)))

(* --------------------------------------------------------------- *)
(* Serialization (line-oriented, hand-rolled like the CSV layer)    *)
(* --------------------------------------------------------------- *)

let magic = "ses-stats 1"

let escape s =
  if not (String.exists (fun c -> c = '\\' || c = '\n' || c = '\r') s) then s
  else begin
    let buf = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let unescape s =
  if not (String.contains s '\\') then Ok s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else if s.[i] <> '\\' then begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
      else if i + 1 >= n then Error "stats: dangling escape"
      else begin
        (match s.[i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
    in
    go 0
  end

let ty_name = function
  | Value.Tint -> "int"
  | Value.Tfloat -> "float"
  | Value.Tstr -> "string"

let ty_of_name = function
  | "int" -> Ok Value.Tint
  | "float" -> Ok Value.Tfloat
  | "string" -> Ok Value.Tstr
  | other -> Error (Printf.sprintf "stats: unknown type %S" other)

(* Values are rendered raw (not [Value.to_string]'s quoted form) so they
   round-trip through [Value.of_string], which parses raw text. *)
let render_value = function
  | Value.Int x -> string_of_int x
  | Value.Float x -> Value.to_string (Value.Float x)
  | Value.Str s -> s

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "rows %d\n" t.rows);
  List.iter
    (fun (name, a) ->
      Buffer.add_string buf
        (Printf.sprintf "attr %s %d %d %b %s\n" (ty_name a.ty) a.cardinality
           a.histogram_rows a.complete (escape name));
      List.iter
        (fun (v, c) ->
          Buffer.add_string buf
            (Printf.sprintf "k %d %s\n" c (escape (render_value v))))
        a.histogram)
    t.attrs;
  Buffer.contents buf

let split_line line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "stats: empty input"
  | first :: rest ->
      if String.trim first <> magic then
        Error "stats: not a ses-stats file"
      else
        let* rows, rest =
          match rest with
          | l :: rest -> (
              match split_line l with
              | "rows", n -> (
                  match int_of_string_opt (String.trim n) with
                  | Some n when n >= 0 -> Ok (n, rest)
                  | Some _ | None -> Error "stats: malformed row count")
              | _ -> Error "stats: expected a rows line")
          | [] -> Error "stats: expected a rows line"
        in
        (* One pass: attr lines open a new attribute, k lines append to
           the latest one. Histograms are rebuilt in file order, which
           [to_string] keeps deterministic. *)
        let rec go acc current lines =
          let close acc = function
            | None -> Ok acc
            | Some (name, ty, cardinality, histogram_rows, complete, keys) ->
                Ok
                  (( name,
                     {
                       ty;
                       cardinality;
                       histogram = List.rev keys;
                       histogram_rows;
                       complete;
                     } )
                  :: acc)
          in
          match lines with
          | [] ->
              let* acc = close acc current in
              Ok (List.rev acc)
          | line :: lines -> (
              match split_line line with
              | "attr", body -> (
                  match String.split_on_char ' ' body with
                  | ty :: card :: hrows :: complete :: name_parts
                    when name_parts <> [] -> (
                      let* ty = ty_of_name ty in
                      let* name = unescape (String.concat " " name_parts) in
                      match
                        ( int_of_string_opt card,
                          int_of_string_opt hrows,
                          bool_of_string_opt complete )
                      with
                      | Some card, Some hrows, Some complete ->
                          let* acc = close acc current in
                          go acc (Some (name, ty, card, hrows, complete, [])) lines
                      | _ -> Error "stats: malformed attr line")
                  | _ -> Error "stats: malformed attr line")
              | "k", body -> (
                  match current with
                  | None -> Error "stats: k line outside an attr block"
                  | Some (name, ty, card, hrows, complete, keys) -> (
                      let count, raw = split_line body in
                      match int_of_string_opt count with
                      | None -> Error "stats: malformed key count"
                      | Some c ->
                          let* raw = unescape raw in
                          let* v =
                            Result.map_error
                              (fun e -> "stats: " ^ e)
                              (Value.of_string ty raw)
                          in
                          go acc
                            (Some (name, ty, card, hrows, complete, (v, c) :: keys))
                            lines))
              | other, _ ->
                  Error (Printf.sprintf "stats: unknown line kind %S" other))
        in
        let* attrs = go [] None rest in
        Ok { rows; attrs }

let pp ppf t =
  Format.fprintf ppf "@[<v>rows: %d" t.rows;
  List.iter
    (fun (name, a) ->
      Format.fprintf ppf "@,@[<hov 2>%s (%a): %d distinct value%s%s" name
        Value.pp_ty a.ty a.cardinality
        (if a.cardinality = 1 then "" else "s")
        (if a.complete then ""
         else Printf.sprintf ", top %d shown" (List.length a.histogram));
      List.iter
        (fun (v, c) -> Format.fprintf ppf "@ %a: %d" Value.pp v c)
        a.histogram;
      Format.fprintf ppf "@]")
    t.attrs;
  Format.fprintf ppf "@]"
