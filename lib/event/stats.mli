(** Per-relation catalog statistics.

    The access-path planner needs to know, before touching a relation,
    roughly how many events an index probe would return. These statistics
    — row count, per-attribute distinct counts and a most-frequent-values
    histogram — are computed in one pass over a relation (or streamed from
    a CSV by {!Ses_store.Csv_stream.stats}), persisted by the catalog as a
    sidecar file, and consulted by the planner's cost model. They are plain
    data with no store or engine dependencies so both layers can share the
    type. *)

type attr = {
  ty : Value.ty;
  cardinality : int;  (** Exact distinct-value count. *)
  histogram : (Value.t * int) list;
      (** Most frequent values first (ties by {!Value.compare}), capped at
          the builder's [cap]; counts are exact. *)
  histogram_rows : int;  (** Rows covered by the histogram entries. *)
  complete : bool;
      (** The histogram lists every distinct value: any key absent from it
          has frequency zero. *)
}

type t = {
  rows : int;
  attrs : (string * attr) list;  (** In schema order. *)
}

val default_cap : int
(** Histogram size bound used when [?cap] is omitted (64). *)

val of_relation : ?cap:int -> Relation.t -> t

(** {2 Streaming accumulation} — one event at a time, for sources that
    never materialize a relation. Distinct counts are exact (the builder
    keeps full per-attribute count tables; the [cap] only bounds the
    persisted histogram). *)

type builder

val builder : Schema.t -> builder

val observe : builder -> Event.t -> unit

val finish : ?cap:int -> builder -> t

(** {2 Lookup and estimation} *)

val rows : t -> int

val find : t -> string -> attr option

val estimate_eq : t -> string -> Value.t -> int option
(** Estimated number of rows whose attribute equals the value: exact when
    the value is in the histogram, [0] when absent from a complete one,
    otherwise the uniform share of the rows outside the histogram
    (at least 1). [None] when the attribute is unknown. *)

(** {2 Persistence} — a line-oriented text format ([ses-stats 1]) written
    next to the relation's CSV by the catalog. *)

val to_string : t -> string

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
