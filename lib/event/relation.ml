type t = {
  schema : Schema.t;
  events : Event.t array;
}

let renumber schema rows =
  (* Stable sort keeps insertion order among equal timestamps, then the
     definitive sequence numbers are assigned. *)
  let tmp =
    List.mapi (fun i (payload, ts) -> Event.make ~seq:i ~ts payload) rows
  in
  let arr = Array.of_list tmp in
  Array.stable_sort Event.compare_chrono arr;
  let events =
    Array.mapi (fun i e -> Event.make ~seq:i ~ts:e.Event.ts e.Event.payload) arr
  in
  { schema; events }

let of_rows schema rows =
  let rec check i = function
    | [] -> Ok ()
    | (payload, ts) :: rest ->
        if Event.typed_ok schema (Event.make ~seq:i ~ts payload) then
          check (i + 1) rest
        else Error (Printf.sprintf "relation: row %d does not match schema" i)
  in
  match check 0 rows with
  | Error _ as e -> e
  | Ok () -> Ok (renumber schema rows)

let of_rows_exn schema rows =
  match of_rows schema rows with Ok r -> r | Error msg -> invalid_arg msg

let schema r = r.schema

let cardinality r = Array.length r.events

let is_empty r = Array.length r.events = 0

let get r i = r.events.(i)

let events r = Array.copy r.events

let to_seq r = Array.to_seq r.events

let iter f r = Array.iter f r.events

let fold f init r = Array.fold_left f init r.events

let rows_of r =
  Array.to_list (Array.map (fun e -> (e.Event.payload, e.Event.ts)) r.events)

let filter p r =
  renumber r.schema
    (List.filter_map
       (fun e ->
         if p e then Some (e.Event.payload, e.Event.ts) else None)
       (Array.to_list r.events))

let append a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.append: schema mismatch";
  renumber a.schema (rows_of a @ rows_of b)

let first_ts r = if is_empty r then None else Some (Event.ts r.events.(0))

let last_ts r =
  if is_empty r then None
  else Some (Event.ts r.events.(Array.length r.events - 1))

let duration r =
  match first_ts r, last_ts r with
  | Some a, Some b -> Time.span a b
  | None, _ | _, None -> 0

let window_size r tau =
  let n = Array.length r.events in
  let ts i = Event.ts r.events.(i) in
  let best = ref 0 in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if !j < i then j := i;
    while !j + 1 < n && Time.span (ts (!j + 1)) (ts i) <= tau do incr j done;
    let width = !j - i + 1 in
    if width > !best then best := width
  done;
  !best

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun e -> Format.fprintf ppf "%a@," (Event.pp r.schema) e) r.events;
  Format.fprintf ppf "@]"
