(** Attribute values and their types.

    Events carry non-temporal attributes (Sec. 3.1). Values are integers,
    floats or strings; comparisons between [Int] and [Float] coerce the
    integer, all other cross-type comparisons are type errors surfaced
    during pattern validation and treated as [false] at runtime. *)

type t =
  | Int of int
  | Float of float
  | Str of string

type ty =
  | Tint
  | Tfloat
  | Tstr

val type_of : t -> ty

val ty_equal : ty -> ty -> bool

val ty_compatible : ty -> ty -> bool
(** [ty_compatible a b] holds when values of types [a] and [b] may be
    compared: equal types, or one numeric type against the other. *)

val compare : t -> t -> int
(** Total order within a compatible pair; values of incompatible types are
    ordered by type tag so the function stays a total order (needed for
    indexing), but patterns never rely on cross-type order. *)

val equal : t -> t -> bool

val numeric : t -> float option
(** The numeric view of a value, if any. *)

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit

val to_string : t -> string
(** Round-trippable rendering: strings are single-quoted with quote
    doubling, floats always contain a ['.'] or exponent. *)

val of_string : ty -> string -> (t, string) result
(** Parse a raw (unquoted) textual field as a value of type [ty]. *)
