(** Event schemas.

    A schema E = (A1, …, Al, T) names the non-temporal attributes of an
    event and fixes their types (Sec. 3.1). The temporal attribute [T] is
    implicit: every event carries a timestamp, and conditions may refer to
    it through {!Field.Timestamp}. *)

type t

val make : (string * Value.ty) list -> (t, string) result
(** Builds a schema; fails on duplicate or empty attribute names, or an
    attribute explicitly named "T" (reserved for the timestamp). *)

val make_exn : (string * Value.ty) list -> t

val of_string : string -> (t, string) result
(** Parses a compact ["NAME:TYPE,NAME:TYPE,…"] spec, e.g.
    ["ID:int,L:string,V:float"]. Types are [int], [float] and [string]
    (or [str]); whitespace around names and types is ignored. Used by
    front ends that need a schema without loading a relation. *)

val arity : t -> int
(** Number of non-temporal attributes. *)

val attributes : t -> (string * Value.ty) list

val index_of : t -> string -> int option
(** Position of a named attribute. *)

val name_of : t -> int -> string

val type_of : t -> int -> Value.ty

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Reference to a field of an event: a named attribute or the implicit
    timestamp attribute T. *)
module Field : sig
  type schema := t

  type t =
    | Attr of int  (** index into the schema's attributes *)
    | Timestamp

  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** Attributes in schema order, then the timestamp. A dedicated
      comparison (rather than the polymorphic [compare]) so orderings
      over fields stay well-defined if the representation ever grows
      non-comparable payloads. *)

  val type_of : schema -> t -> Value.ty
  (** Timestamps are typed as integers. *)

  val resolve : schema -> string -> (t, string) result
  (** Resolves an attribute name; ["T"] resolves to [Timestamp]. *)

  val name : schema -> t -> string

  val pp : schema -> Format.formatter -> t -> unit
end
