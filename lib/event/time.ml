type t = int

type duration = int

let compare = Int.compare

let equal = Int.equal

let ( <. ) a b = a < b

let ( <=. ) a b = a <= b

let span a b = abs (a - b)

let add t d = t + d

let min = Stdlib.min

let max = Stdlib.max

let hours n = n

let days n = 24 * n

let pp_raw = Format.pp_print_int

let pp ppf t =
  let day = if t >= 0 then t / 24 else (t - 23) / 24 in
  let hour = t - (day * 24) in
  Format.fprintf ppf "day %d %02d:00 (t=%d)" day hour t
