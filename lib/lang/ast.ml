open Ses_event
open Ses_pattern

type var_decl = {
  name : string;
  quantifier : Variable.quantifier;
}

type time_unit =
  | Raw
  | Hours
  | Days

type set_decl = {
  negated : bool;
  vars : var_decl list;
}

type t = {
  sets : set_decl list;
  where : Pattern.Spec.cond list;
  within : int;
  unit_ : time_unit;
}

let duration ast =
  match ast.unit_ with
  | Raw | Hours -> ast.within
  | Days -> 24 * ast.within

let pp_var ppf v =
  Format.pp_print_string ppf
    (Variable.to_string { Variable.name = v.name; quantifier = v.quantifier })

let pp_operand ppf = function
  | Pattern.Spec.Const v ->
      (* [Value.to_string] doubles embedded quotes, so string constants
         survive a print/parse roundtrip. *)
      Format.pp_print_string ppf (Value.to_string v)
  | Pattern.Spec.Field (var, attr) -> Format.fprintf ppf "%s.%s" var attr

let pp_cond ppf (c : Pattern.Spec.cond) =
  let var, attr = c.left in
  Format.fprintf ppf "%s.%s %a %a" var attr Predicate.pp c.op pp_operand
    c.right

let pp ppf ast =
  let pp_set ppf set =
    Format.fprintf ppf "%s(%a)"
      (if set.negated then "NOT " else "")
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_var)
      set.vars
  in
  Format.fprintf ppf "@[<v>PATTERN %a@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
       pp_set)
    ast.sets;
  (match ast.where with
  | [] -> ()
  | conds ->
      Format.fprintf ppf "WHERE %a@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ")
           pp_cond)
        conds);
  Format.fprintf ppf "WITHIN %d@]" (duration ast)
