type error = {
  message : string;
  line : int;
  col : int;
}

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let peek_is st c = st.pos < String.length st.src && Char.equal st.src.[st.pos] c

let peek2_is st c =
  st.pos + 1 < String.length st.src && Char.equal st.src.[st.pos + 1] c

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let keyword_of = function
  | "PATTERN" -> Some Token.PATTERN
  | "WHERE" -> Some Token.WHERE
  | "WITHIN" -> Some Token.WITHIN
  | "AND" -> Some Token.AND
  | "DAYS" | "DAY" -> Some Token.DAYS
  | "HOURS" | "HOUR" -> Some Token.HOURS
  | "UNITS" | "UNIT" -> Some Token.UNITS
  | "NOT" -> Some Token.NOT
  | _ -> None

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  let word = String.sub st.src start (st.pos - start) in
  match keyword_of (String.uppercase_ascii word) with
  | Some kw -> kw
  | None -> Token.IDENT word

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match peek st, peek2 st with
    | Some '.', Some c when is_digit c -> true
    | Some _, _ | None, _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    Token.FLOAT (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else Token.INT (int_of_string (String.sub st.src start (st.pos - start)))

exception Fail of error

let fail st message = raise (Fail { message; line = st.line; col = st.col })

let lex_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some '\'' when peek2_is st '\'' ->
        Buffer.add_char buf '\'';
        advance st;
        advance st;
        go ()
    | Some '\'' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit tok line col =
    (* st.line/st.col is one past the token's last character at emit
       time, which is exactly the exclusive end of the span. *)
    let span =
      Ses_pattern.Span.make ~start_line:line ~start_col:col ~end_line:st.line
        ~end_col:st.col
    in
    tokens := (tok, span) :: !tokens
  in
  try
    let rec loop () =
      let line = st.line and col = st.col in
      match peek st with
      | None -> emit Token.EOF line col
      | Some (' ' | '\t' | '\r' | '\n') ->
          advance st;
          loop ()
      | Some '-' when peek2_is st '-' ->
          while (match peek st with Some c -> c <> '\n' | None -> false) do
            advance st
          done;
          loop ()
      | Some '-' when (match peek2 st with Some c -> is_digit c | None -> false) ->
          advance st;
          let tok =
            match lex_number st with
            | Token.INT n -> Token.INT (-n)
            | Token.FLOAT f -> Token.FLOAT (-.f)
            | t -> t
          in
          emit tok line col;
          loop ()
      | Some '-' when peek2_is st '>' ->
          advance st;
          advance st;
          emit Token.ARROW line col;
          loop ()
      | Some '(' -> advance st; emit Token.LPAREN line col; loop ()
      | Some ')' -> advance st; emit Token.RPAREN line col; loop ()
      | Some ',' -> advance st; emit Token.COMMA line col; loop ()
      | Some '.' -> advance st; emit Token.DOT line col; loop ()
      | Some '+' -> advance st; emit Token.PLUS line col; loop ()
      | Some '{' -> advance st; emit Token.LBRACE line col; loop ()
      | Some '}' -> advance st; emit Token.RBRACE line col; loop ()
      | Some '=' ->
          advance st;
          if peek_is st '=' then advance st;
          emit (Token.OP Ses_event.Predicate.Eq) line col;
          loop ()
      | Some '!' when peek2_is st '=' ->
          advance st;
          advance st;
          emit (Token.OP Ses_event.Predicate.Neq) line col;
          loop ()
      | Some '<' ->
          advance st;
          let op =
            match peek st with
            | Some '>' -> advance st; Ses_event.Predicate.Neq
            | Some '=' -> advance st; Ses_event.Predicate.Le
            | Some _ | None -> Ses_event.Predicate.Lt
          in
          emit (Token.OP op) line col;
          loop ()
      | Some '>' ->
          advance st;
          let op =
            match peek st with
            | Some '=' -> advance st; Ses_event.Predicate.Ge
            | Some _ | None -> Ses_event.Predicate.Gt
          in
          emit (Token.OP op) line col;
          loop ()
      | Some '\'' ->
          let tok = lex_string st in
          emit tok line col;
          loop ()
      | Some c when is_ident_start c ->
          let tok = lex_ident st in
          emit tok line col;
          loop ()
      | Some c when is_digit c ->
          let tok = lex_number st in
          emit tok line col;
          loop ()
      | Some c -> fail st (Printf.sprintf "unexpected character %C" c)
    in
    loop ();
    Ok (List.rev !tokens)
  with Fail e -> Error e
