(** Front door of the pattern language: parse + resolve against a schema. *)


open Ses_pattern

val compile : Ses_event.Schema.t -> Ast.t -> (Pattern.t, string list) result
(** Resolves variable declarations and conditions against the schema
    (unknown attributes, duplicate variables and type mismatches are
    reported by {!Ses_pattern.Pattern.make}). *)

val parse_pattern : Ses_event.Schema.t -> string -> (Pattern.t, string) result
(** [parse_pattern schema src] parses and compiles in one step; all lexer,
    parser and resolution errors are rendered into the error string. *)

val parse_pattern_exn : Ses_event.Schema.t -> string -> Pattern.t

val to_query : Pattern.t -> string
(** Renders a pattern back to concrete syntax (WITHIN in raw units). The
    result reparses to an equivalent pattern against the same schema:
    [parse_pattern schema (to_query p)] succeeds and matches like [p]. *)
