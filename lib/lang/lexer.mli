(** Hand-written lexer for the pattern language. *)

type error = {
  message : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

val pp_error : Format.formatter -> error -> unit

val tokenize : string -> ((Token.t * int * int) list, error) result
(** Token stream with (line, col) of each token start; the last entry is
    always [EOF]. Comments run from [--] to end of line. String literals
    are single-quoted with [''] escaping a quote. *)
