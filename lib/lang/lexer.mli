(** Hand-written lexer for the pattern language. *)

type error = {
  message : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

val pp_error : Format.formatter -> error -> unit

val tokenize : string -> ((Token.t * Ses_pattern.Span.t) list, error) result
(** Token stream with the source span of each token; the last entry is
    always [EOF] (a zero-width span at end of input). Comments run from
    [--] to end of line. String literals are single-quoted with ['']
    escaping a quote. *)
