open Ses_event
open Ses_pattern

type error = {
  message : string;
  line : int;
  col : int;
}

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

type state = {
  mutable tokens : (Token.t * Span.t) list;
  mutable last : Span.t;  (* span of the most recently consumed token *)
}

exception Fail of error

let current st =
  match st.tokens with
  | tok :: _ -> tok
  | [] -> (Token.EOF, Span.point ~line:0 ~col:0)

let span_of st = snd (current st)

let fail st message =
  let span = span_of st in
  raise (Fail { message; line = span.Span.start_line; col = span.Span.start_col })

let advance st =
  match st.tokens with
  | (_, span) :: rest ->
      st.last <- span;
      st.tokens <- rest
  | [] -> ()

let expect st tok =
  let got, _ = current st in
  if Token.equal got tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.describe tok)
         (Token.describe got))

let parse_bounds st =
  (* After '{': INT [ ',' [ INT ] ] '}'. *)
  let min_count =
    match current st with
    | Token.INT n, _ ->
        advance st;
        n
    | got, _ ->
        fail st
          (Printf.sprintf "expected a repetition count but found %s"
             (Token.describe got))
  in
  let max_count =
    match current st with
    | Token.COMMA, _ -> (
        advance st;
        match current st with
        | Token.INT n, _ ->
            advance st;
            Some n
        | _ -> None)
    | _ -> Some min_count
  in
  expect st Token.RBRACE;
  if min_count < 1 then fail st "repetition minimum must be at least 1";
  (match max_count with
  | Some m when m < min_count ->
      fail st "repetition maximum must not be below the minimum"
  | Some _ | None -> ());
  { Ses_pattern.Variable.min_count; max_count }

let parse_var st =
  match current st with
  | Token.IDENT name, _ ->
      advance st;
      let quantifier =
        match current st with
        | Token.PLUS, _ ->
            advance st;
            { Ses_pattern.Variable.min_count = 1; max_count = None }
        | Token.LBRACE, _ ->
            advance st;
            parse_bounds st
        | _ -> { Ses_pattern.Variable.min_count = 1; max_count = Some 1 }
      in
      { Ast.name; quantifier }
  | got, _ ->
      fail st
        (Printf.sprintf "expected a variable name but found %s"
           (Token.describe got))

let parse_set st =
  match current st with
  | Token.LPAREN, _ ->
      advance st;
      let rec more acc =
        match current st with
        | Token.COMMA, _ ->
            advance st;
            more (parse_var st :: acc)
        | _ ->
            expect st Token.RPAREN;
            List.rev acc
      in
      more [ parse_var st ]
  | _ -> [ parse_var st ]

let parse_set_decl st =
  match current st with
  | Token.NOT, _ ->
      advance st;
      { Ast.negated = true; vars = parse_set st }
  | _ -> { Ast.negated = false; vars = parse_set st }

let parse_sets st =
  let rec more acc =
    match current st with
    | Token.ARROW, _ ->
        advance st;
        more (parse_set_decl st :: acc)
    | _ -> List.rev acc
  in
  more [ parse_set_decl st ]

let parse_field st =
  match current st with
  | Token.IDENT var, _ ->
      advance st;
      expect st Token.DOT;
      (match current st with
      | Token.IDENT attr, _ ->
          advance st;
          (var, attr)
      | got, _ ->
          fail st
            (Printf.sprintf "expected an attribute name but found %s"
               (Token.describe got)))
  | got, _ ->
      fail st
        (Printf.sprintf "expected a variable reference but found %s"
           (Token.describe got))

let parse_operand st =
  match current st with
  | Token.INT n, _ ->
      advance st;
      Pattern.Spec.Const (Value.Int n)
  | Token.FLOAT f, _ ->
      advance st;
      Pattern.Spec.Const (Value.Float f)
  | Token.STRING s, _ ->
      advance st;
      Pattern.Spec.Const (Value.Str s)
  | Token.IDENT _, _ ->
      let var, attr = parse_field st in
      Pattern.Spec.Field (var, attr)
  | got, _ ->
      fail st
        (Printf.sprintf "expected a constant or field reference but found %s"
           (Token.describe got))

let parse_cond st =
  let start = span_of st in
  let left = parse_field st in
  match current st with
  | Token.OP op, _ ->
      advance st;
      let right = parse_operand st in
      (* st.last is the last token consumed by the operand. *)
      let span = Span.union start st.last in
      { Pattern.Spec.left; op; right; span = Some span }
  | got, _ ->
      fail st
        (Printf.sprintf "expected a comparison operator but found %s"
           (Token.describe got))

let parse_conds st =
  let rec more acc =
    match current st with
    | Token.AND, _ ->
        advance st;
        more (parse_cond st :: acc)
    | _ -> List.rev acc
  in
  more [ parse_cond st ]

let parse_query st =
  expect st Token.PATTERN;
  let sets = parse_sets st in
  let where =
    match current st with
    | Token.WHERE, _ ->
        advance st;
        parse_conds st
    | _ -> []
  in
  expect st Token.WITHIN;
  let within =
    match current st with
    | Token.INT n, _ ->
        advance st;
        n
    | got, _ ->
        fail st
          (Printf.sprintf "expected a duration but found %s"
             (Token.describe got))
  in
  let unit_ =
    match current st with
    | Token.DAYS, _ ->
        advance st;
        Ast.Days
    | Token.HOURS, _ ->
        advance st;
        Ast.Hours
    | Token.UNITS, _ ->
        advance st;
        Ast.Raw
    | _ -> Ast.Raw
  in
  expect st Token.EOF;
  { Ast.sets; where; within; unit_ }

let parse src =
  match Lexer.tokenize src with
  | Error { Lexer.message; line; col } -> Error { message; line; col }
  | Ok tokens -> (
      let st = { tokens; last = Span.point ~line:1 ~col:1 } in
      try Ok (parse_query st) with Fail e -> Error e)
