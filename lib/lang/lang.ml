open Ses_pattern

let compile schema (ast : Ast.t) =
  let to_variable (v : Ast.var_decl) =
    { Variable.name = v.name; quantifier = v.quantifier }
  in
  (* Positive sets index the boundaries; a NOT group guards the boundary
     after the positive set preceding it. *)
  let sets, negations, _ =
    List.fold_left
      (fun (sets, negations, pos_index) (decl : Ast.set_decl) ->
        if decl.negated then
          ( sets,
            negations @ List.map (fun v -> (pos_index - 1, to_variable v)) decl.vars,
            pos_index )
        else (sets @ [ List.map to_variable decl.vars ], negations, pos_index + 1))
      ([], [], 0) ast.sets
  in
  Pattern.make_full ~schema ~sets ~negations ~where:ast.where
    ~within:(Ast.duration ast)

let parse_pattern schema src =
  match Parser.parse src with
  | Error e -> Error (Format.asprintf "%a" Parser.pp_error e)
  | Ok ast -> (
      match compile schema ast with
      | Ok p -> Ok p
      | Error errs -> Error (String.concat "; " errs))

let parse_pattern_exn schema src =
  match parse_pattern schema src with
  | Ok p -> p
  | Error msg -> invalid_arg ("Lang.parse_pattern_exn: " ^ msg)

let ast_of_pattern p =
  let schema = Pattern.schema p in
  let decl_of vid =
    let var = Pattern.variable p vid in
    { Ast.name = var.Variable.name; quantifier = var.Variable.quantifier }
  in
  let sets =
    List.concat
      (List.init (Pattern.n_sets p) (fun i ->
           let positive =
             { Ast.negated = false; vars = List.map decl_of (Pattern.set_vars p i) }
           in
           let guards =
             List.filter_map
               (fun (b, nv) ->
                 if b = i then
                   Some { Ast.negated = true; vars = [ decl_of nv ] }
                 else None)
               (Pattern.negations p)
           in
           positive :: guards))
  in
  let bare vid = (Pattern.variable p vid).Variable.name in
  let field_name f = Ses_event.Schema.Field.name schema f in
  let where =
    List.map
      (fun (c : Condition.t) ->
        let right =
          match c.rhs with
          | Condition.Const v -> Pattern.Spec.Const v
          | Condition.Var (v', f') -> Pattern.Spec.Field (bare v', field_name f')
        in
        {
          Pattern.Spec.left = (bare c.var, field_name c.field);
          op = c.op;
          right;
          span = Condition.span c;
        })
      (Pattern.conditions p)
  in
  { Ast.sets; where; within = Pattern.tau p; unit_ = Ast.Raw }

let to_query p = Format.asprintf "%a" Ast.pp (ast_of_pattern p)
