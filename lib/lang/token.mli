(** Tokens of the SES pattern language.

    The concrete syntax is a compact textual form of the SQL change
    proposal's PERMUTE chains:

    {v
    PATTERN (c, p+, d) -> (b)
    WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
      AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
    WITHIN 11 DAYS
    v}

    Each parenthesized group is one event set pattern (a PERMUTE); [->]
    sequences them; [+] marks group variables and [{m}], [{m,}], [{m,n}]
    bounded quantifiers; [WITHIN] gives τ in raw time units, or with the
    [DAYS]/[HOURS] suffixes for hour-granularity relations. Keywords are
    case-insensitive. *)

type t =
  | PATTERN
  | WHERE
  | WITHIN
  | AND
  | DAYS
  | HOURS
  | UNITS
  | NOT
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | ARROW
  | DOT
  | PLUS
  | LBRACE
  | RBRACE
  | OP of Ses_event.Predicate.op
  | EOF

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val describe : t -> string
(** Human-readable name for error messages. *)
