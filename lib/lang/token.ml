type t =
  | PATTERN
  | WHERE
  | WITHIN
  | AND
  | DAYS
  | HOURS
  | UNITS
  | NOT
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | ARROW
  | DOT
  | PLUS
  | LBRACE
  | RBRACE
  | OP of Ses_event.Predicate.op
  | EOF

let equal (a : t) (b : t) = a = b

let describe = function
  | PATTERN -> "PATTERN"
  | WHERE -> "WHERE"
  | WITHIN -> "WITHIN"
  | AND -> "AND"
  | DAYS -> "DAYS"
  | HOURS -> "HOURS"
  | UNITS -> "UNITS"
  | NOT -> "NOT"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string '%s'" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | ARROW -> "'->'"
  | DOT -> "'.'"
  | PLUS -> "'+'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | OP op -> Printf.sprintf "'%s'" (Ses_event.Predicate.to_string op)
  | EOF -> "end of input"

let pp ppf t = Format.pp_print_string ppf (describe t)
