(** Recursive-descent parser for the pattern language.

    Grammar (keywords case-insensitive):
    {v
    query   ::= PATTERN sets [WHERE conds] WITHIN INT [unit] EOF
    sets    ::= set ('->' set)*
    set     ::= '(' var (',' var)* ')' | var
    var     ::= IDENT ['+']
    conds   ::= cond (AND cond)*
    cond    ::= field op operand
    field   ::= IDENT '.' IDENT
    operand ::= field | INT | FLOAT | STRING
    op      ::= '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
    unit    ::= DAYS | HOURS | UNITS
    v} *)

type error = {
  message : string;
  line : int;
  col : int;
}

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.t, error) result
(** Lexes and parses a query. *)
