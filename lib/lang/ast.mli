(** Abstract syntax of the pattern language, prior to schema resolution. *)

open Ses_pattern

type var_decl = {
  name : string;
  quantifier : Ses_pattern.Variable.quantifier;
      (** \{1,1\} for a bare name, \{1,∞\} for a trailing [+], or explicit
          [{m}], [{m,}], [{m,n}] bounds *)
}

type time_unit =
  | Raw  (** plain number or UNITS *)
  | Hours
  | Days

type set_decl = {
  negated : bool;
      (** a [NOT (…)] group: its variables are exclusion guards between
          the surrounding positive sets, not matched events *)
  vars : var_decl list;
}

type t = {
  sets : set_decl list;  (** the PERMUTE chain, with interleaved NOT sets *)
  where : Pattern.Spec.cond list;
  within : int;
  unit_ : time_unit;
}

val duration : t -> int
(** τ in raw time units: [Hours] maps to ×1 and [Days] to ×24, matching
    hour-granularity relations like the paper's. *)

val pp : Format.formatter -> t -> unit
(** Pretty-prints back to concrete syntax (always with a raw WITHIN). *)
