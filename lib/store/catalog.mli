(** A directory of named event relations persisted as CSV files — the
    repository's stand-in for the paper's Oracle event store. Relation
    names map to [<name>.csv] inside the catalog directory; names are
    restricted to [A-Za-z0-9_-] to stay filesystem-safe. *)

open Ses_event

type t

val open_dir : string -> (t, string) result
(** Creates the directory if needed. *)

val path : t -> string

val list : t -> string list
(** Names of stored relations, sorted. *)

val exists : t -> string -> bool

val save : t -> string -> Relation.t -> (unit, string) result

val load : t -> string -> (Relation.t, string) result

val remove : t -> string -> (unit, string) result
