(** A directory of named event relations persisted as CSV files — the
    repository's stand-in for the paper's Oracle event store. Relation
    names map to [<name>.csv] inside the catalog directory; names are
    restricted to [A-Za-z0-9_-] to stay filesystem-safe. *)

open Ses_event

type t

val open_dir : string -> (t, string) result
(** Creates the directory if needed. *)

val path : t -> string

val list : t -> string list
(** Names of stored relations, sorted. *)

val exists : t -> string -> bool

val save : t -> string -> Relation.t -> (unit, string) result
(** Writes [<name>.csv] and refreshes the [<name>.stats] sidecar from the
    in-memory relation. A sidecar write failure is ignored — {!stats}
    recomputes missing or stale sidecars on demand. *)

val load : t -> string -> (Relation.t, string) result

val stats : t -> string -> (Stats.t, string) result
(** Statistics for a stored relation: the persisted sidecar when it is at
    least as new as the CSV and parses, otherwise recomputed by one
    streaming pass (and re-persisted). *)

val refresh_stats : ?cap:int -> t -> string -> (Stats.t, string) result
(** Forces a streaming recompute of the sidecar, e.g. after the CSV was
    edited in place. [?cap] bounds the histograms. *)

val remove : t -> string -> (unit, string) result
(** Removes the CSV and its stats sidecar, if any. *)
