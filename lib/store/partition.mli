(** Partitioning a relation by an attribute.

    SES patterns whose conditions join all variables on one attribute
    (like the paper's per-patient ID equalities) can be evaluated per
    partition; the harness uses this as an ablation. *)

open Ses_event

val by_attribute : Relation.t -> int -> (Value.t * Relation.t) list
(** One sub-relation per distinct value, keys sorted; each sub-relation
    keeps the original chronological order (sequence numbers are
    reassigned densely within the partition). *)

val by_name : Relation.t -> string -> ((Value.t * Relation.t) list, string) result
(** Same, resolving the attribute by name. *)
