(** Simple selection queries over stored relations — the read path a SES
    query planner would push down to the store before pattern matching
    (e.g. restricting to one ward, one time range, or pre-applying the
    Sec. 4.5 event filter inside the store). *)

open Ses_event

type predicate

val attr : string -> Predicate.op -> Value.t -> predicate
(** Comparison of a named attribute (or "T") against a constant. *)

val conj : predicate list -> predicate

val disj : predicate list -> predicate

val time_range : Time.t -> Time.t -> predicate
(** Inclusive bounds. *)

val compile : Schema.t -> predicate -> ((Event.t -> bool), string) result
(** Resolves attribute names; fails on unknown attributes or type
    mismatches. *)

val compile_traced :
  trace:(string -> bool -> unit) ->
  Schema.t ->
  predicate ->
  ((Event.t -> bool), string) result
(** Like {!compile}, but calls [trace name passed] on every atomic
    comparison actually evaluated (conjunction and disjunction
    short-circuit, so atoms skipped by earlier ones do not report) —
    the hook per-field selectivity telemetry hangs on, without this
    library knowing anything about the instrumentation layer. *)

val select : Relation.t -> predicate -> (Relation.t, string) result

val pp : Format.formatter -> predicate -> unit
(** Human-readable rendering, e.g. [((L = 'C') or (L = 'P'))] — used to
    report which predicate a streaming run pushed into the scan. *)
