open Ses_event

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* One-record reader over a generic character producer: respects quoted
   fields, including embedded separators and newlines. [Ok None] signals a
   clean end of input before any character of a new record. *)
let read_record ~next ~peek =
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let end_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let finish () = Ok (Some (List.rev (Buffer.contents buf :: !fields))) in
  let rec plain started =
    match next () with
    | None -> if started then finish () else Ok None
    | Some ',' ->
        end_field ();
        plain true
    | Some '\n' -> finish ()
    | Some '\r' -> plain started
    | Some '"' when Buffer.length buf = 0 -> quoted ()
    | Some c ->
        Buffer.add_char buf c;
        plain true
  and quoted () =
    match next () with
    | None -> Error "csv: unterminated quoted field"
    | Some '"' when (match peek () with Some '"' -> true | Some _ | None -> false) ->
        ignore (next ());
        Buffer.add_char buf '"';
        quoted ()
    | Some '"' -> after_quote ()
    | Some c ->
        Buffer.add_char buf c;
        quoted ()
  and after_quote () =
    match next () with
    | None -> finish ()
    | Some ',' ->
        end_field ();
        plain true
    | Some '\n' -> finish ()
    | Some '\r' -> after_quote ()
    | Some c -> Error (Printf.sprintf "csv: unexpected %C after closing quote" c)
  in
  (* A record that starts with a quoted field has consumed no plain
     character yet; treat the opening quote as having started it. *)
  match peek () with
  | None -> Ok None
  | Some '"' ->
      ignore (next ());
      (match quoted () with
      | Ok (Some _) as ok -> ok
      | Ok None -> assert false
      | Error _ as e -> e)
  | Some _ -> plain false

let string_producer src =
  let pos = ref 0 in
  let peek () = if !pos < String.length src then Some src.[!pos] else None in
  let next () =
    let c = peek () in
    if c <> None then incr pos;
    c
  in
  (next, peek)

let records src =
  let next, peek = string_producer src in
  let rec go acc =
    match read_record ~next ~peek with
    | Ok None -> Ok (List.rev acc)
    | Ok (Some fields) -> go (fields :: acc)
    | Error _ as e -> e
  in
  go []

let split_line line =
  match records line with
  | Ok [ fields ] -> Ok fields
  | Ok [] -> Ok []
  | Ok (_ :: _ :: _) -> Error "csv: embedded record separator"
  | Error _ as e -> e

let ty_name = function
  | Value.Tint -> "int"
  | Value.Tfloat -> "float"
  | Value.Tstr -> "string"

let ty_of_name = function
  | "int" -> Ok Value.Tint
  | "float" -> Ok Value.Tfloat
  | "string" -> Ok Value.Tstr
  | other -> Error (Printf.sprintf "csv: unknown type %S in header" other)

let header_of_schema schema =
  let cells =
    List.map
      (fun (name, ty) -> escape_field (name ^ ":" ^ ty_name ty))
      (Schema.attributes schema)
  in
  String.concat "," (cells @ [ "T" ])

let schema_of_header line =
  match split_line line with
  | Error _ as e -> e
  | Ok [] -> Error "csv: empty header"
  | Ok cells -> (
      match List.rev cells with
      | "T" :: rev_attrs ->
          let parse_cell cell =
            match String.rindex_opt cell ':' with
            | None ->
                Error (Printf.sprintf "csv: header cell %S lacks a type" cell)
            | Some i -> (
                let name = String.sub cell 0 i in
                let ty =
                  String.sub cell (i + 1) (String.length cell - i - 1)
                in
                match ty_of_name ty with
                | Ok ty -> Ok (name, ty)
                | Error _ as e -> e)
          in
          let rec all acc = function
            | [] -> Schema.make (List.rev acc)
            | cell :: rest -> (
                match parse_cell cell with
                | Ok attr -> all (attr :: acc) rest
                | Error _ as e -> e)
          in
          all [] (List.rev rev_attrs)
      | _ -> Error "csv: header must end with the timestamp column T")

let render_value = function
  | Value.Int x -> string_of_int x
  | Value.Float x -> Printf.sprintf "%.12g" x
  | Value.Str s -> escape_field s

let to_string r =
  let schema = Relation.schema r in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header_of_schema schema);
  Buffer.add_char buf '\n';
  Relation.iter
    (fun e ->
      let cells =
        Array.to_list (Array.map render_value e.Event.payload)
        @ [ string_of_int (Event.ts e) ]
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    r;
  Buffer.contents buf

let row_of_fields schema fields =
  let arity = Schema.arity schema in
  if List.length fields <> arity + 1 then
    Error
      (Printf.sprintf "csv: expected %d fields, found %d" (arity + 1)
         (List.length fields))
  else
    let rec values acc i = function
      | [ ts_field ] -> (
          match int_of_string_opt (String.trim ts_field) with
          | Some ts -> Ok (Array.of_list (List.rev acc), ts)
          | None -> Error (Printf.sprintf "csv: bad timestamp %S" ts_field))
      | field :: rest -> (
          match Value.of_string (Schema.type_of schema i) field with
          | Ok v -> values (v :: acc) (i + 1) rest
          | Error _ as e -> e)
      | [] -> Error "csv: missing timestamp field"
    in
    values [] 0 fields

let of_string src =
  match records src with
  | Error _ as e -> e
  | Ok [] -> Error "csv: empty input"
  | Ok (header :: data) -> (
      let header_line = String.concat "," (List.map escape_field header) in
      match schema_of_header header_line with
      | Error _ as e -> e
      | Ok schema ->
          let rec rows acc idx = function
            | [] -> Relation.of_rows schema (List.rev acc)
            | fields :: rest -> (
                match row_of_fields schema fields with
                | Ok row -> rows (row :: acc) (idx + 1) rest
                | Error msg ->
                    Error (Printf.sprintf "row %d: %s" idx msg))
          in
          rows [] 1 data)

let save path r =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string r));
    Ok ()
  with Sys_error msg -> Error msg

let load path =
  try
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string content
  with Sys_error msg -> Error msg
