(** Secondary hash index on one attribute of a relation.

    Maps each distinct attribute value to the events carrying it, in
    chronological order. Used by {!Partition} and by callers that look up
    events by entity id (e.g. all events of one patient). *)

open Ses_event

type t

val build : Relation.t -> int -> t
(** [build r attr] indexes attribute [attr] (a schema position). *)

val attribute : t -> int

val lookup : t -> Value.t -> Event.t list
(** Chronological; empty for absent keys. *)

val keys : t -> Value.t list
(** Distinct values, sorted by {!Ses_event.Value.compare}. *)

val cardinality : t -> int
(** Number of distinct keys. *)
