(** Secondary hash index on one attribute of a relation.

    Maps each distinct attribute value to the events carrying it, stored
    once at {!build} as a chronological [Event.t array] with a parallel
    timestamp zone map, so lookups share a prebuilt array instead of
    re-reversing a list per call and τ-windows slice postings by binary
    search. Used by {!Partition}, by the access-path executor, and by
    callers that look up events by entity id (e.g. all events of one
    patient). *)

open Ses_event

type t

val build : Relation.t -> int -> t
(** [build r attr] indexes attribute [attr] (a schema position). *)

val attribute : t -> int

val postings : t -> Value.t -> Event.t array
(** Chronological events carrying the key; empty for absent keys. The
    array is the index's own storage, shared across calls — callers must
    not mutate it. *)

val postings_between : t -> Value.t -> lo:Time.t -> hi:Time.t -> Event.t array
(** The slice of [postings] with timestamps in [[lo, hi]] (inclusive),
    located by binary search on the zone map. Returns the shared full
    array when the range covers it, a fresh sub-array otherwise. *)

val count : t -> Value.t -> int
(** Number of events carrying the key, without touching the postings. *)

val lookup : t -> Value.t -> Event.t list
(** List view of {!postings} (fresh, chronological). *)

val keys : t -> Value.t list
(** Distinct values, sorted by {!Ses_event.Value.compare}. *)

val cardinality : t -> int
(** Number of distinct keys. *)
