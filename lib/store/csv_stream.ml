open Ses_event

let channel_producer ic =
  let pending = ref None in
  let peek () =
    match !pending with
    | Some _ as c -> c
    | None ->
        let c = In_channel.input_char ic in
        pending := c;
        c
  in
  let next () =
    match !pending with
    | Some _ as c ->
        pending := None;
        c
    | None -> In_channel.input_char ic
  in
  (next, peek)

type source = {
  ic : In_channel.t;
  next : unit -> char option;
  peek : unit -> char option;
  schema : Schema.t;
  mutable filter : (Event.t -> bool) option;
  mutable seq : int;  (** next sequence number to assign *)
  mutable last_ts : int;
  mutable dropped : int;
  mutable closed : bool;
}

let open_source ?selection path =
  match In_channel.open_text path with
  | exception Sys_error msg -> Error msg
  | ic -> (
      let fail msg =
        In_channel.close ic;
        Error msg
      in
      let next, peek = channel_producer ic in
      match Csv.read_record ~next ~peek with
      | Error msg -> fail msg
      | Ok None -> fail "csv: empty input"
      | Ok (Some header) -> (
          let header_line =
            String.concat "," (List.map Csv.escape_field header)
          in
          match Csv.schema_of_header header_line with
          | Error msg -> fail msg
          | Ok schema -> (
              let filter =
                match selection with
                | None -> Ok None
                | Some p -> Result.map Option.some (Selection.compile schema p)
              in
              match filter with
              | Error msg -> fail msg
              | Ok filter ->
                  Ok
                    {
                      ic;
                      next;
                      peek;
                      schema;
                      filter;
                      seq = 0;
                      last_ts = min_int;
                      dropped = 0;
                      closed = false;
                    })))

let source_schema src = src.schema

let push_selection src p =
  Result.map
    (fun f -> src.filter <- Some f)
    (Selection.compile src.schema p)

let set_filter src f = src.filter <- Some f

let scanned src = src.seq

let dropped src = src.dropped

let close_source src =
  if not src.closed then begin
    src.closed <- true;
    In_channel.close src.ic
  end

let rec next src =
  if src.closed then Ok None
  else
    match Csv.read_record ~next:src.next ~peek:src.peek with
    | Error _ as e -> e
    | Ok None -> Ok None
    | Ok (Some fields) -> (
        match Csv.row_of_fields src.schema fields with
        | Error msg -> Error (Printf.sprintf "row %d: %s" (src.seq + 1) msg)
        | Ok (payload, ts) ->
            if ts < src.last_ts then
              Error
                (Printf.sprintf "row %d: timestamps out of order (%d after %d)"
                   (src.seq + 1) ts src.last_ts)
            else begin
              src.last_ts <- ts;
              let e = Event.make ~seq:src.seq ~ts payload in
              src.seq <- src.seq + 1;
              match src.filter with
              | Some keep when not (keep e) ->
                  src.dropped <- src.dropped + 1;
                  next src
              | Some _ | None -> Ok (Some e)
            end)

(* Chunked scan: up to [max] filtered events per call, so downstream
   batch consumers (the stream runner, [Executor.feed_batch]) pay their
   per-call plumbing once per chunk instead of once per row. *)
let next_batch src max =
  if max < 1 then invalid_arg "Csv_stream.next_batch: max < 1";
  let rec collect acc k =
    if k = 0 then Ok acc
    else
      match next src with
      | Error _ as e -> e
      | Ok None -> Ok acc
      | Ok (Some e) -> collect (e :: acc) (k - 1)
  in
  Result.map
    (fun events -> Array.of_list (List.rev events))
    (collect [] max)

let fold_source src ~init ~f =
  let rec go acc =
    match next src with
    | Error _ as e -> e
    | Ok None -> Ok acc
    | Ok (Some e) -> go (f acc e)
  in
  go init

let with_source ?selection path k =
  match open_source ?selection path with
  | Error _ as e -> e
  | Ok src -> Fun.protect ~finally:(fun () -> close_source src) (fun () -> k src)

let fold path ~init ~f =
  with_source path (fun src ->
      Result.map (fun acc -> (src.schema, acc)) (fold_source src ~init ~f))

let iter path ~f =
  Result.map fst (fold path ~init:() ~f:(fun () e -> f e))

let count path =
  Result.map snd (fold path ~init:0 ~f:(fun acc _ -> acc + 1))

let stats ?cap path =
  with_source path (fun src ->
      let b = Stats.builder src.schema in
      Result.map
        (fun () -> (src.schema, Stats.finish ?cap b))
        (fold_source src ~init:() ~f:(fun () e -> Stats.observe b e)))

(* One CSV data record outside any file scan — the entry point a live
   ingestion path (the server's [EVENT] lines) uses: the caller owns the
   sequence counter and the chronological-order check, this function
   owns the CSV grammar. *)
let row_of_line schema ~seq line =
  match Csv.split_line line with
  | Error _ as e -> e
  | Ok fields -> (
      match Csv.row_of_fields schema fields with
      | Error _ as e -> e
      | Ok (payload, ts) -> Ok (Event.make ~seq ~ts payload))
