open Ses_event

let channel_producer ic =
  let pending = ref None in
  let peek () =
    match !pending with
    | Some _ as c -> c
    | None ->
        let c = In_channel.input_char ic in
        pending := c;
        c
  in
  let next () =
    match !pending with
    | Some _ as c ->
        pending := None;
        c
    | None -> In_channel.input_char ic
  in
  (next, peek)

let fold path ~init ~f =
  match In_channel.open_text path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () ->
          let next, peek = channel_producer ic in
          match Csv.read_record ~next ~peek with
          | Error _ as e -> e
          | Ok None -> Error "csv: empty input"
          | Ok (Some header) -> (
              let header_line =
                String.concat "," (List.map Csv.escape_field header)
              in
              match Csv.schema_of_header header_line with
              | Error _ as e -> e
              | Ok schema ->
                  let rec go acc seq last_ts =
                    match Csv.read_record ~next ~peek with
                    | Error _ as e -> e
                    | Ok None -> Ok (schema, acc)
                    | Ok (Some fields) -> (
                        match Csv.row_of_fields schema fields with
                        | Error msg ->
                            Error (Printf.sprintf "row %d: %s" (seq + 1) msg)
                        | Ok (payload, ts) ->
                            if ts < last_ts then
                              Error
                                (Printf.sprintf
                                   "row %d: timestamps out of order (%d after %d)"
                                   (seq + 1) ts last_ts)
                            else
                              go (f acc (Event.make ~seq ~ts payload)) (seq + 1) ts)
                  in
                  go init 0 min_int))

let iter path ~f =
  Result.map fst (fold path ~init:() ~f:(fun () e -> f e))

let count path =
  Result.map snd (fold path ~init:0 ~f:(fun acc _ -> acc + 1))
