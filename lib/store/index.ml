open Ses_event

type posting = {
  events : Event.t array;  (** chronological *)
  ts : int array;  (** zone map: [ts.(i) = Event.ts events.(i)] *)
}

type t = {
  attribute : int;
  table : (Value.t, posting) Hashtbl.t;
}

let build r attr =
  (* Accumulate newest-first lists, then freeze each into a chronological
     array once: relations iterate in chronological order, so a single
     [rev] per key suffices and no sort is needed. *)
  let acc : (Value.t, Event.t list * int) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter
    (fun e ->
      let key = Event.attr e attr in
      match Hashtbl.find_opt acc key with
      | Some (es, n) -> Hashtbl.replace acc key (e :: es, n + 1)
      | None -> Hashtbl.add acc key ([ e ], 1))
    r;
  let table = Hashtbl.create (Hashtbl.length acc) in
  Hashtbl.iter
    (fun key (es, n) ->
      match es with
      | [] -> ()
      | last :: _ ->
          let events = Array.make n last in
          List.iteri (fun i e -> events.(n - 1 - i) <- e) es;
          let ts = Array.map Event.ts events in
          Hashtbl.add table key { events; ts })
    acc;
  { attribute = attr; table }

let attribute t = t.attribute

let empty_posting = [||]

let postings t key =
  match Hashtbl.find_opt t.table key with
  | Some p -> p.events
  | None -> empty_posting

let count t key =
  match Hashtbl.find_opt t.table key with
  | Some p -> Array.length p.events
  | None -> 0

(* First index with [ts.(i) >= lo] — the lower bound in a sorted array. *)
let lower_bound ts lo =
  let n = Array.length ts in
  let l = ref 0 and r = ref n in
  while !l < !r do
    let mid = (!l + !r) / 2 in
    if ts.(mid) < lo then l := mid + 1 else r := mid
  done;
  !l

(* First index with [ts.(i) > hi]. *)
let upper_bound ts hi =
  let n = Array.length ts in
  let l = ref 0 and r = ref n in
  while !l < !r do
    let mid = (!l + !r) / 2 in
    if ts.(mid) <= hi then l := mid + 1 else r := mid
  done;
  !l

let postings_between t key ~lo ~hi =
  match Hashtbl.find_opt t.table key with
  | None -> empty_posting
  | Some p ->
      if hi < lo then empty_posting
      else
        let i = lower_bound p.ts lo in
        let j = upper_bound p.ts hi in
        if i = 0 && j = Array.length p.events then p.events
        else if j <= i then empty_posting
        else Array.sub p.events i (j - i)

let lookup t key = Array.to_list (postings t key)

let keys t =
  List.sort Value.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let cardinality t = Hashtbl.length t.table
