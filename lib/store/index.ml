open Ses_event

type t = {
  attribute : int;
  table : (Value.t, Event.t list) Hashtbl.t;  (** values kept newest-first *)
}

let build r attr =
  let table = Hashtbl.create 64 in
  Relation.iter
    (fun e ->
      let key = Event.attr e attr in
      let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
      Hashtbl.replace table key (e :: existing))
    r;
  { attribute = attr; table }

let attribute t = t.attribute

let lookup t key =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.table key))

let keys t =
  List.sort Value.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let cardinality t = Hashtbl.length t.table
