(** CSV serialization of event relations.

    The paper reads its events from an Oracle database; this repository's
    stand-in persists relations as self-describing CSV files. The header
    row carries [name:type] cells for the non-temporal attributes followed
    by the literal cell [T]; data rows carry the attribute values and the
    integer timestamp. Fields containing commas, quotes or newlines are
    double-quoted with [""] escaping, per RFC 4180. *)

open Ses_event

val escape_field : string -> string

val split_line : string -> (string list, string) result
(** Splits one CSV record into raw fields (unescaped). *)

val read_record :
  next:(unit -> char option) ->
  peek:(unit -> char option) ->
  (string list option, string) result
(** Low-level one-record reader over a character producer — the engine
    behind both {!of_string} and {!Csv_stream}. [Ok None] is a clean end
    of input. *)

val row_of_fields :
  Schema.t -> string list -> (Value.t array * int, string) result
(** Parses one data record's raw fields into a payload and timestamp. *)

val header_of_schema : Schema.t -> string

val schema_of_header : string -> (Schema.t, string) result

val to_string : Relation.t -> string

val of_string : string -> (Relation.t, string) result

val save : string -> Relation.t -> (unit, string) result
(** Writes to a file path. *)

val load : string -> (Relation.t, string) result
