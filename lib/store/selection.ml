open Ses_event

type predicate =
  | Attr of string * Predicate.op * Value.t
  | Conj of predicate list
  | Disj of predicate list

let attr name op v = Attr (name, op, v)

let conj ps = Conj ps

let disj ps = Disj ps

let time_range lo hi =
  Conj
    [
      Attr ("T", Predicate.Ge, Value.Int lo);
      Attr ("T", Predicate.Le, Value.Int hi);
    ]

let rec compile_gen trace schema = function
  | Attr (name, op, v) -> (
      match Schema.Field.resolve schema name with
      | Error _ as e -> e
      | Ok field ->
          let field_ty = Schema.Field.type_of schema field in
          if not (Value.ty_compatible field_ty (Value.type_of v)) then
            Error
              (Format.asprintf "selection: %s has type %a, not comparable to %a"
                 name Value.pp_ty field_ty Value.pp v)
          else
            let eval e = Predicate.eval op (Event.get e field) v in
            Ok
              (match trace with
              | None -> eval
              | Some t ->
                  fun e ->
                    let r = eval e in
                    t name r;
                    r))
  | Conj ps -> (
      match compile_all trace schema ps with
      | Error _ as e -> e
      | Ok fs -> Ok (fun e -> List.for_all (fun f -> f e) fs))
  | Disj ps -> (
      match compile_all trace schema ps with
      | Error _ as e -> e
      | Ok fs -> Ok (fun e -> List.exists (fun f -> f e) fs))

and compile_all trace schema ps =
  List.fold_right
    (fun p acc ->
      match acc, compile_gen trace schema p with
      | Ok fs, Ok f -> Ok (f :: fs)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    ps (Ok [])

let compile schema p = compile_gen None schema p

let compile_traced ~trace schema p = compile_gen (Some trace) schema p

let rec pp ppf = function
  | Attr (name, op, v) ->
      Format.fprintf ppf "%s %a %a" name Predicate.pp op Value.pp v
  | Conj [] -> Format.pp_print_string ppf "true"
  | Disj [] -> Format.pp_print_string ppf "false"
  | Conj [ p ] | Disj [ p ] -> pp ppf p
  | Conj ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
           pp)
        ps
  | Disj ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " or ")
           pp)
        ps

let select r p =
  match compile (Relation.schema r) p with
  | Error _ as e -> e
  | Ok f -> Ok (Relation.filter f r)
