open Ses_event

let by_attribute r attr =
  let index = Index.build r attr in
  let schema = Relation.schema r in
  (* Build each sub-relation straight from the index's chronological
     postings: O(n) total instead of one O(n) [Relation.filter] pass per
     key. [of_rows_exn]'s stable sort sees already-sorted rows and only
     reassigns dense sequence numbers, as [filter] did. *)
  List.map
    (fun key ->
      let rows =
        Array.to_list
          (Array.map
             (fun e -> (Array.copy e.Event.payload, Event.ts e))
             (Index.postings index key))
      in
      (key, Relation.of_rows_exn schema rows))
    (Index.keys index)

let by_name r name =
  match Schema.index_of (Relation.schema r) name with
  | Some attr -> Ok (by_attribute r attr)
  | None -> Error (Printf.sprintf "partition: unknown attribute %S" name)
