open Ses_event

let by_attribute r attr =
  let index = Index.build r attr in
  List.map
    (fun key ->
      (key, Relation.filter (fun e -> Value.equal (Event.attr e attr) key) r))
    (Index.keys index)

let by_name r name =
  match Schema.index_of (Relation.schema r) name with
  | Some attr -> Ok (by_attribute r attr)
  | None -> Error (Printf.sprintf "partition: unknown attribute %S" name)
