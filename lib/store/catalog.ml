type t = { dir : string }

let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       name

let open_dir dir =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
    else if not (Sys.is_directory dir) then failwith (dir ^ " is not a directory");
    Ok { dir }
  with
  | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | Failure msg | Sys_error msg -> Error msg

let path t = t.dir

let file t name = Filename.concat t.dir (name ^ ".csv")

let list t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".csv" f)
  |> List.sort String.compare

let exists t name = valid_name name && Sys.file_exists (file t name)

let save t name r =
  if not (valid_name name) then
    Error (Printf.sprintf "catalog: invalid relation name %S" name)
  else Csv.save (file t name) r

let load t name =
  if not (valid_name name) then
    Error (Printf.sprintf "catalog: invalid relation name %S" name)
  else if not (Sys.file_exists (file t name)) then
    Error (Printf.sprintf "catalog: no relation named %S" name)
  else Csv.load (file t name)

let remove t name =
  if not (exists t name) then
    Error (Printf.sprintf "catalog: no relation named %S" name)
  else
    try
      Sys.remove (file t name);
      Ok ()
    with Sys_error msg -> Error msg
