type t = { dir : string }

let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       name

let open_dir dir =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
    else if not (Sys.is_directory dir) then failwith (dir ^ " is not a directory");
    Ok { dir }
  with
  | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | Failure msg | Sys_error msg -> Error msg

let path t = t.dir

let file t name = Filename.concat t.dir (name ^ ".csv")

let stats_file t name = Filename.concat t.dir (name ^ ".stats")

let list t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".csv" f)
  |> List.sort String.compare

let exists t name = valid_name name && Sys.file_exists (file t name)

let write_stats_file path stats =
  try
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Ses_event.Stats.to_string stats));
    Ok ()
  with Sys_error msg -> Error msg

let save t name r =
  if not (valid_name name) then
    Error (Printf.sprintf "catalog: invalid relation name %S" name)
  else
    Result.bind (Csv.save (file t name) r) (fun () ->
        (* Refresh the sidecar from the in-memory relation — no second
           file pass. A failure to write statistics does not fail the
           save: the planner recomputes stale or missing sidecars. *)
        ignore (write_stats_file (stats_file t name) (Ses_event.Stats.of_relation r));
        Ok ())

let load t name =
  if not (valid_name name) then
    Error (Printf.sprintf "catalog: invalid relation name %S" name)
  else if not (Sys.file_exists (file t name)) then
    Error (Printf.sprintf "catalog: no relation named %S" name)
  else Csv.load (file t name)

let refresh_stats ?cap t name =
  if not (valid_name name) then
    Error (Printf.sprintf "catalog: invalid relation name %S" name)
  else if not (Sys.file_exists (file t name)) then
    Error (Printf.sprintf "catalog: no relation named %S" name)
  else
    Result.bind (Csv_stream.stats ?cap (file t name)) (fun (_, stats) ->
        Result.map (fun () -> stats) (write_stats_file (stats_file t name) stats))

let mtime path =
  try Some (Unix.stat path).Unix.st_mtime with Unix.Unix_error _ -> None

let stats t name =
  if not (valid_name name) then
    Error (Printf.sprintf "catalog: invalid relation name %S" name)
  else if not (Sys.file_exists (file t name)) then
    Error (Printf.sprintf "catalog: no relation named %S" name)
  else
    let csv = file t name and sidecar = stats_file t name in
    let fresh =
      match (mtime csv, mtime sidecar) with
      | Some c, Some s -> s >= c
      | _ -> false
    in
    let cached =
      if not fresh then None
      else
        match In_channel.with_open_text sidecar In_channel.input_all with
        | exception Sys_error _ -> None
        | text -> Result.to_option (Ses_event.Stats.of_string text)
    in
    match cached with
    | Some stats -> Ok stats
    | None -> refresh_stats t name

let remove t name =
  if not (exists t name) then
    Error (Printf.sprintf "catalog: no relation named %S" name)
  else
    try
      Sys.remove (file t name);
      (try Sys.remove (stats_file t name) with Sys_error _ -> ());
      Ok ()
    with Sys_error msg -> Error msg
