(** Streaming CSV reader: events from a file without loading it whole.

    Reads the self-describing header, then yields events one at a time in
    file order, assigning sequence numbers as it goes. The feed must be
    chronologically sorted (the engine's input contract); out-of-order
    timestamps are reported as an error. Use this to pipe large archived
    relations straight into {!Ses_core.Engine.feed} with O(1) memory. *)

open Ses_event

val fold :
  string ->
  init:'a ->
  f:('a -> Event.t -> 'a) ->
  (Schema.t * 'a, string) result
(** [fold path ~init ~f] opens [path], parses the header, folds [f] over
    the events and closes the file (also on exceptions). *)

val iter : string -> f:(Event.t -> unit) -> (Schema.t, string) result

val count : string -> (int, string) result
(** Number of events, without materializing them. *)
