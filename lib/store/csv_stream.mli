(** Streaming CSV reader: events from a file without loading it whole.

    Reads the self-describing header, then yields events one at a time in
    file order, assigning sequence numbers as it goes. The feed must be
    chronologically sorted (the engine's input contract); out-of-order
    timestamps are reported as an error. Use this to pipe large archived
    relations straight into a {!Ses_core.Executor} with O(1) memory.

    A {!Selection.predicate} (or an arbitrary event predicate) can be
    pushed down into the scan: rejected rows are dropped inside the store
    layer, before anything downstream sees them. Sequence numbers are
    assigned to {e every} scanned row, dropped or not, so the delivered
    events are identical to what a client-side filter over the full scan
    would produce. *)

open Ses_event

(** {1 Staged source interface} *)

type source

val open_source : ?selection:Selection.predicate -> string -> (source, string) result
(** Opens the file and parses the header. [?selection] is compiled
    against the parsed schema (an unknown attribute or type mismatch is
    an [Error] and the file is closed). *)

val source_schema : source -> Schema.t

val push_selection : source -> Selection.predicate -> (unit, string) result
(** Installs (replacing any previous filter) a store-side filter compiled
    against the source's schema. Callers that need the schema to build
    the predicate — e.g. a pattern parsed against it — use this after
    {!open_source}. *)

val set_filter : source -> (Event.t -> bool) -> unit
(** Installs an arbitrary pre-compiled filter. *)

val next : source -> (Event.t option, string) result
(** The next event passing the filter; [Ok None] at end of input. Errors
    (malformed row, out-of-order timestamp) carry the 1-based row
    number. *)

val next_batch : source -> int -> (Event.t array, string) result
(** Up to [max] events passing the filter, in file order ([max >= 1];
    raises [Invalid_argument] otherwise). The empty array means end of
    input — a short but non-empty chunk does not. An error aborts the
    whole chunk (events scanned before the bad row within it are not
    returned), so treat any [Error] as fatal to the scan. *)

val fold_source : source -> init:'a -> f:('a -> Event.t -> 'a) -> ('a, string) result

val scanned : source -> int
(** Rows read from the file so far (including dropped ones). *)

val dropped : source -> int
(** Rows dropped by the pushed-down filter. *)

val close_source : source -> unit
(** Closes the file; idempotent. [next] afterwards returns [Ok None]. *)

val with_source :
  ?selection:Selection.predicate ->
  string ->
  (source -> ('a, string) result) ->
  ('a, string) result
(** Opens, runs the callback, and closes the file (also on exceptions). *)

(** {1 Whole-file convenience} *)

val fold :
  string ->
  init:'a ->
  f:('a -> Event.t -> 'a) ->
  (Schema.t * 'a, string) result
(** [fold path ~init ~f] opens [path], parses the header, folds [f] over
    the events and closes the file (also on exceptions). *)

val iter : string -> f:(Event.t -> unit) -> (Schema.t, string) result

val count : string -> (int, string) result
(** Number of events, without materializing them. *)

val stats : ?cap:int -> string -> (Schema.t * Stats.t, string) result
(** One streaming pass accumulating {!Ses_event.Stats} — row count,
    per-attribute cardinality and value histograms — without
    materializing the relation. [?cap] bounds the persisted histogram
    (default {!Ses_event.Stats.default_cap}). *)

(** {1 Row-at-a-time entry point} *)

val row_of_line : Schema.t -> seq:int -> string -> (Event.t, string) result
(** Parses one CSV data record (no header, no trailing newline) against
    a known schema into an event with the given sequence number — the
    entry point for live ingestion paths that receive rows one line at a
    time rather than as a file scan. The caller owns sequence numbering
    and the chronological-order check. Errors are the CSV layer's
    (malformed quoting, arity mismatch, bad value or timestamp). *)
