(** Enumeration helpers for the brute-force baseline (Sec. 5.2). *)

val factorial : int -> int
(** [factorial n] for n ≤ 20; raises [Invalid_argument] beyond (overflow). *)

val permutations : 'a list -> 'a list list
(** All permutations, in lexicographic order of input positions. The empty
    list has one permutation. *)

val cartesian : 'a list list -> 'a list list
(** Cartesian product of choice lists, each result in input order:
    [cartesian [[1;2];[3]]] is [[[1;3];[2;3]]]. The product of zero lists
    is [[[]]]. *)

val n_permutations : 'a list -> int

val n_sequences : 'a list list -> int
(** ∏ |l_i|! — the number of variable orderings of a SES pattern, i.e. the
    number of automata the brute force builds. *)
