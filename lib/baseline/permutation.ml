let factorial n =
  if n < 0 || n > 20 then invalid_arg "Permutation.factorial";
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x rest)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insert_everywhere x) (permutations rest)

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let n_permutations l = factorial (List.length l)

let n_sequences ls = List.fold_left (fun acc l -> acc * n_permutations l) 1 ls
