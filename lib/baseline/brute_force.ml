open Ses_event
open Ses_pattern
open Ses_core

let orderings p =
  let per_set =
    List.init (Pattern.n_sets p) (fun i ->
        Permutation.permutations (Pattern.set_vars p i))
  in
  List.map List.concat (Permutation.cartesian per_set)

let spec_of_condition p (c : Condition.t) =
  let schema = Pattern.schema p in
  let bare v = (Pattern.variable p v).Variable.name in
  let field_name f = Schema.Field.name schema f in
  let right =
    match c.rhs with
    | Condition.Const v -> Pattern.Spec.Const v
    | Condition.Var (v', f') -> Pattern.Spec.Field (bare v', field_name f')
  in
  {
    Pattern.Spec.left = (bare c.var, field_name c.field);
    op = c.op;
    right;
    span = Condition.span c;
  }

let sequence_pattern p ordering =
  let sets = List.map (fun v -> [ Pattern.variable p v ]) ordering in
  let where = List.map (spec_of_condition p) (Pattern.conditions p) in
  (* A negation after original set i guards the chain position after the
     last variable of that set: cumulative set sizes are ordering-
     independent because orderings permute within sets only. *)
  let negations =
    List.map
      (fun (b, nv) ->
        let position =
          List.fold_left
            (fun acc i -> acc + List.length (Pattern.set_vars p i))
            0
            (List.init (b + 1) Fun.id)
        in
        (position - 1, Pattern.variable p nv))
      (Pattern.negations p)
  in
  Pattern.make_full_exn ~schema:(Pattern.schema p) ~sets ~negations ~where
    ~within:(Pattern.tau p)

let n_automata p =
  Permutation.n_sequences
    (List.init (Pattern.n_sets p) (Pattern.set_vars p))

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
  n_automata : int;
}

(* Translate a substitution of a derived chain pattern back to the variable
   ids of the original pattern (ids differ because the derived pattern
   declares variables in ordering order). *)
let retarget ~original ~derived subst =
  List.map
    (fun (v, e) ->
      let name = (Pattern.variable derived v).Variable.name in
      match Pattern.var_id original name with
      | Some v' -> (v', e)
      | None -> assert false)
    subst

(* Incremental interface: all chain automata advance in lockstep on each
   [feed]; completions are retargeted to the original pattern's variable
   ids and deduplicated across automata as they appear (distinct
   orderings find the same substitution). *)

type stream = {
  pattern : Pattern.t;
  streams : (Pattern.t * Engine.stream) list;
  seen : ((int * int) list, unit) Hashtbl.t;
  mutable emissions : Substitution.t list;  (** deduplicated, newest first *)
  mutable max_total : int;
}

let create_pattern ?(options = Engine.default_options) p =
  let derived = List.map (sequence_pattern p) (orderings p) in
  {
    pattern = p;
    streams =
      List.map
        (fun dp -> (dp, Engine.create ~options (Automaton.of_pattern dp)))
        derived;
    seen = Hashtbl.create 256;
    emissions = [];
    max_total = 0;
  }

let create ?options automaton = create_pattern ?options (Automaton.pattern automaton)

let fresh st substs =
  List.filter
    (fun s ->
      let key = Substitution.canonical s in
      if Hashtbl.mem st.seen key then false
      else begin
        Hashtbl.add st.seen key ();
        st.emissions <- s :: st.emissions;
        true
      end)
    substs

let feed st e =
  let completed =
    List.concat_map
      (fun (dp, engine) ->
        List.map
          (retarget ~original:st.pattern ~derived:dp)
          (Engine.feed engine e))
      st.streams
  in
  let total =
    List.fold_left (fun acc (_, s) -> acc + Engine.population s) 0 st.streams
  in
  if total > st.max_total then st.max_total <- total;
  fresh st completed

(* Each chain consumes the whole chunk through the engine's batched
   path; the cross-chain population peak is then sampled once per batch
   (a lower bound on the per-event peak, like the other batched
   executors). *)
let feed_batch st es =
  let completed =
    List.concat_map
      (fun (dp, engine) ->
        List.map
          (retarget ~original:st.pattern ~derived:dp)
          (Engine.feed_batch engine es))
      st.streams
  in
  let total =
    List.fold_left (fun acc (_, s) -> acc + Engine.population s) 0 st.streams
  in
  if total > st.max_total then st.max_total <- total;
  fresh st completed

let close st =
  fresh st
    (List.concat_map
       (fun (dp, engine) ->
         List.map
           (retarget ~original:st.pattern ~derived:dp)
           (Engine.close engine))
       st.streams)

let emitted st = List.rev st.emissions

let population st =
  List.fold_left (fun acc (_, s) -> acc + Engine.population s) 0 st.streams

let metrics st =
  let summed =
    Metrics.merge_replicas
      (List.map (fun (_, s) -> Engine.metrics s) st.streams)
  in
  { summed with Metrics.max_simultaneous_instances = st.max_total }

let n_streams st = List.length st.streams

let run ?(options = Engine.default_options) p events =
  let st = create_pattern ~options p in
  Seq.iter (fun e -> ignore (feed st e)) events;
  ignore (close st);
  let raw = emitted st in
  let matches =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy p raw
    else raw
  in
  { matches; raw; metrics = metrics st; n_automata = n_streams st }

let run_relation ?options p relation =
  run ?options p (Relation.to_seq relation)

(* The executor registration: injected into [ses_core]'s registry because
   the dependency points the other way. *)

module Exec = struct
  type nonrec t = stream

  let name = "brute-force"

  let create = create

  let feed = feed

  let feed_batch = feed_batch

  let close = close

  let emitted = emitted

  let population = population

  let metrics = metrics
end

let register () = Executor.register_brute_force (module Exec)
