open Ses_event
open Ses_pattern
open Ses_core

let orderings p =
  let per_set =
    List.init (Pattern.n_sets p) (fun i ->
        Permutation.permutations (Pattern.set_vars p i))
  in
  List.map List.concat (Permutation.cartesian per_set)

let spec_of_condition p (c : Condition.t) =
  let schema = Pattern.schema p in
  let bare v = (Pattern.variable p v).Variable.name in
  let field_name f = Schema.Field.name schema f in
  let right =
    match c.rhs with
    | Condition.Const v -> Pattern.Spec.Const v
    | Condition.Var (v', f') -> Pattern.Spec.Field (bare v', field_name f')
  in
  { Pattern.Spec.left = (bare c.var, field_name c.field); op = c.op; right }

let sequence_pattern p ordering =
  let sets = List.map (fun v -> [ Pattern.variable p v ]) ordering in
  let where = List.map (spec_of_condition p) (Pattern.conditions p) in
  (* A negation after original set i guards the chain position after the
     last variable of that set: cumulative set sizes are ordering-
     independent because orderings permute within sets only. *)
  let negations =
    List.map
      (fun (b, nv) ->
        let position =
          List.fold_left
            (fun acc i -> acc + List.length (Pattern.set_vars p i))
            0
            (List.init (b + 1) Fun.id)
        in
        (position - 1, Pattern.variable p nv))
      (Pattern.negations p)
  in
  Pattern.make_full_exn ~schema:(Pattern.schema p) ~sets ~negations ~where
    ~within:(Pattern.tau p)

let n_automata p =
  Permutation.n_sequences
    (List.init (Pattern.n_sets p) (Pattern.set_vars p))

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
  n_automata : int;
}

(* Translate a substitution of a derived chain pattern back to the variable
   ids of the original pattern (ids differ because the derived pattern
   declares variables in ordering order). *)
let retarget ~original ~derived subst =
  List.map
    (fun (v, e) ->
      let name = (Pattern.variable derived v).Variable.name in
      match Pattern.var_id original name with
      | Some v' -> (v', e)
      | None -> assert false)
    subst

let run ?(options = Engine.default_options) p events =
  let derived = List.map (sequence_pattern p) (orderings p) in
  let streams =
    List.map
      (fun dp -> (dp, Engine.create ~options (Automaton.of_pattern dp)))
      derived
  in
  let max_total = ref 0 in
  Seq.iter
    (fun e ->
      List.iter (fun (_, st) -> ignore (Engine.feed st e)) streams;
      let total =
        List.fold_left (fun acc (_, st) -> acc + Engine.population st) 0 streams
      in
      if total > !max_total then max_total := total)
    events;
  List.iter (fun (_, st) -> ignore (Engine.close st)) streams;
  let raw_all =
    List.concat_map
      (fun (dp, st) ->
        List.map (retarget ~original:p ~derived:dp) (Engine.emitted st))
      streams
  in
  (* Deduplicate across automata: distinct orderings find the same
     substitution. *)
  let seen = Hashtbl.create 256 in
  let raw =
    List.filter
      (fun s ->
        let key = Substitution.canonical s in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      raw_all
  in
  let matches =
    if options.Engine.finalize then
      Substitution.finalize ~policy:options.Engine.policy p raw
    else raw
  in
  let metrics =
    List.fold_left
      (fun acc (_, st) -> Metrics.merge acc (Engine.metrics st))
      Metrics.zero streams
  in
  let metrics =
    { metrics with Metrics.max_simultaneous_instances = !max_total }
  in
  { matches; raw; metrics; n_automata = List.length streams }

let run_relation ?options p relation =
  run ?options p (Relation.to_seq relation)
