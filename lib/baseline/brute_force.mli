(** Brute-force baseline for SES pattern matching (Sec. 5.2).

    Instead of one automaton whose states are variable {e sets}, the brute
    force enumerates every ordering of the pattern's variables that is
    compatible with the sequence of event set patterns — one permutation per
    set, concatenated — derives from each ordering a pattern of singleton
    {e sets} (⟨{w1}, …, {wk}⟩, Θ, τ), builds a (chain-shaped) SES automaton
    for it, and executes all |V1|!·…·|Vm|! automata in parallel over the
    input. This corresponds to straightforward extensions of the automata
    of DejaVu / NFAb / Cayuga, as the paper notes.

    For patterns without group variables, over relations with strictly
    increasing timestamps (the paper's Sec. 3.1 total-order assumption),
    the union of the chain automata's raw emissions is a superset of the
    SES automaton's raw emissions: each SES branch follows some ordering,
    but a chain automaton may skip an event that the SES automaton is
    forced to consume for a different variable and bind its own variable
    later (the paper does not discuss this asymmetry; the extra results
    are exactly the non-greedy ones — equality of the finalized output
    holds on selective condition sets such as the paper's experiments,
    where each event fires at most one variable per state). Two caveats,
    both absent from the paper: (1) with simultaneous events a chain
    imposes a strict order between same-set variables that the set pattern
    does not, so the inclusion can fail; (2) with group variables a
    derived chain additionally requires the group's bindings to be
    consecutive, so the baseline can miss interleaved matches — the paper
    only evaluates the brute force on singleton-only patterns
    (Experiment 1). *)

open Ses_event
open Ses_pattern
open Ses_core

val orderings : Pattern.t -> int list list
(** All variable orderings (by id, w.r.t. the input pattern): the
    concatenation of one permutation per event set pattern. *)

val sequence_pattern : Pattern.t -> int list -> Pattern.t
(** The derived pattern ⟨{w1}, …, {wk}⟩ for one ordering: every variable
    becomes its own event set pattern (group variables keep their Kleene
    plus), Θ and τ are unchanged. *)

val n_automata : Pattern.t -> int

type outcome = {
  matches : Substitution.t list;  (** finalized union of all automata *)
  raw : Substitution.t list;  (** deduplicated union of raw emissions *)
  metrics : Metrics.snapshot;
      (** summed over automata; [max_simultaneous_instances] is the maximum
          over time of the total instance population, the quantity plotted
          in Fig. 11 *)
  n_automata : int;
}

val run :
  ?options:Engine.options -> Pattern.t -> Event.t Seq.t -> outcome

val run_relation :
  ?options:Engine.options -> Pattern.t -> Relation.t -> outcome

(** {1 Incremental interface}

    The push-based view, implementing {!Ses_core.Executor.EXECUTOR}: all
    chain automata advance in lockstep on each [feed]; completions are
    retargeted to the original pattern's variable ids and deduplicated
    across automata as they appear. *)

type stream

val create : ?options:Engine.options -> Automaton.t -> stream
(** Derives the chains from the automaton's pattern (the SES automaton
    itself is not executed). *)

val create_pattern : ?options:Engine.options -> Pattern.t -> stream

val feed : stream -> Event.t -> Substitution.t list
(** Raw substitutions first completed on this event (across all chains,
    deduplicated against everything emitted so far). *)

val feed_batch : stream -> Event.t array -> Substitution.t list
(** Batched lockstep: every chain consumes the chunk through
    {!Engine.feed_batch}; completions are retargeted and deduplicated as
    in {!feed}, grouped by chain within the chunk. *)

val close : stream -> Substitution.t list

val emitted : stream -> Substitution.t list

val population : stream -> int
(** Total live instances across all chain automata — the quantity
    plotted in Fig. 11. *)

val metrics : stream -> Metrics.snapshot

val n_streams : stream -> int

val register : unit -> unit
(** Installs this module as {!Ses_core.Executor}'s [`Brute_force]
    strategy. Idempotent. The registration is explicit (not a module
    initializer) so it works regardless of which [ses_baseline] modules
    the final executable happens to link. *)
