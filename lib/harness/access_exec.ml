open Ses_event
open Ses_pattern
open Ses_core

type prepared = {
  relation : Relation.t;
  stats : Stats.t;
  indexes : (int, Ses_store.Index.t) Hashtbl.t;
}

let prepare ?stats relation =
  let stats =
    match stats with Some s -> s | None -> Stats.of_relation relation
  in
  { relation; stats; indexes = Hashtbl.create 4 }

let relation p = p.relation

let stats p = p.stats

let index_on p attr =
  match Hashtbl.find_opt p.indexes attr with
  | Some idx -> idx
  | None ->
      let idx = Ses_store.Index.build p.relation attr in
      Hashtbl.add p.indexes attr idx;
      idx

type sparse = {
  candidates : Event.t array;
  postings_scanned : int;
  key_probes : int;
  clipped : int;
}

(* First index with [a.(i) >= x] in a sorted int array. *)
let lower_bound a x =
  let l = ref 0 and r = ref (Array.length a) in
  while !l < !r do
    let mid = (!l + !r) / 2 in
    if a.(mid) < x then l := mid + 1 else r := mid
  done;
  !l

(* Some timestamp of [a] lies in [[lo, hi]]. *)
let any_within a ~lo ~hi =
  let i = lower_bound a lo in
  i < Array.length a && a.(i) <= hi

let materialize ?telemetry prepared probes ~tau =
  let module D = Predicate.Domain in
  let c_probe, c_postings, c_candidates =
    match telemetry with
    | None -> (None, None, None)
    | Some tl ->
        ( Some (Telemetry.counter tl "index.probe"),
          Some (Telemetry.counter tl "index.postings_scanned"),
          Some (Telemetry.counter tl "index.candidates") )
  in
  let postings_scanned = ref 0 in
  let key_probes = ref 0 in
  (* The union of per-variable candidate sets, deduplicated by sequence
     number: one event can satisfy several variables' clauses but must
     enter the engine once. *)
  let union : (int, Event.t) Hashtbl.t = Hashtbl.create 1024 in
  let probe_arrays =
    List.map
      (fun (pr : Planner.probe) ->
        let idx = index_on prepared pr.Planner.probe_field in
        let keys =
          match pr.Planner.probe_keys with
          | Some ks -> ks
          | None ->
              List.filter
                (fun k -> D.mem pr.Planner.probe_domain k)
                (Ses_store.Index.keys idx)
        in
        let accepted = ref [] in
        let n_accepted = ref 0 in
        List.iter
          (fun k ->
            incr key_probes;
            let es = Ses_store.Index.postings idx k in
            postings_scanned := !postings_scanned + Array.length es;
            Array.iter
              (fun e ->
                if
                  List.for_all
                    (fun atom -> Event_filter.satisfies_atom e atom)
                    pr.Planner.probe_residual
                then begin
                  accepted := e :: !accepted;
                  incr n_accepted
                end)
              es)
          keys;
        (pr, List.rev !accepted, !n_accepted))
      probes
  in
  (* Per required (positive) variable, the sorted timestamps of its
     accepted candidates — these bound the τ-clip below. *)
  let required =
    List.filter_map
      (fun ((pr : Planner.probe), accepted, n) ->
        if pr.Planner.probe_required then begin
          let ts = Array.make n 0 in
          List.iteri (fun i e -> ts.(i) <- Event.ts e) accepted;
          Array.sort Int.compare ts;
          Some ts
        end
        else None)
      probe_arrays
  in
  List.iter
    (fun (_, accepted, _) ->
      List.iter
        (fun e ->
          if not (Hashtbl.mem union (Event.seq e)) then
            Hashtbl.add union (Event.seq e) e)
        accepted)
    probe_arrays;
  (* τ-clip: a candidate farther than the window from {e every} candidate
     of some required variable can appear in no match (each match binds
     at least one event of each positive variable, and all events of a
     match — negation killers included — lie within τ of each other), so
     it is dropped before the engine allocates anything for it. *)
  let kept = ref [] in
  let n_kept = ref 0 in
  let clipped = ref 0 in
  Hashtbl.iter
    (fun _ e ->
      let t = Event.ts e in
      if
        List.for_all
          (fun ts_arr -> any_within ts_arr ~lo:(t - tau) ~hi:(t + tau))
          required
      then begin
        kept := e :: !kept;
        incr n_kept
      end
      else incr clipped)
    union;
  let candidates =
    match !kept with
    | [] -> [||]
    | hd :: _ ->
        let arr = Array.make !n_kept hd in
        List.iteri (fun i e -> arr.(i) <- e) !kept;
        arr
  in
  Array.sort Event.compare_chrono candidates;
  Option.iter (fun c -> Telemetry.Counter.add c !key_probes) c_probe;
  Option.iter
    (fun c -> Telemetry.Counter.add c !postings_scanned)
    c_postings;
  Option.iter
    (fun c -> Telemetry.Counter.add c (Array.length candidates))
    c_candidates;
  {
    candidates;
    postings_scanned = !postings_scanned;
    key_probes = !key_probes;
    clipped = !clipped;
  }

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
  executor : string;
  access : Planner.access;
  candidates : int;
  postings_scanned : int;
  clipped : int;
}

let run ?(options = Engine.default_options) ?(strategy = `Auto)
    ?(mode = `Auto) prepared automaton =
  let plan = Planner.plan automaton in
  let access = Planner.choose_access ~mode ~stats:prepared.stats plan automaton in
  match access with
  | Planner.Scan _ ->
      let o = Executor.run_relation ~options strategy automaton prepared.relation in
      {
        matches = o.Engine.matches;
        raw = o.Engine.raw;
        metrics = o.Engine.metrics;
        executor = Executor.strategy_name strategy;
        access;
        candidates = Relation.cardinality prepared.relation;
        postings_scanned = 0;
        clipped = 0;
      }
  | Planner.Index_probe { probes; _ } ->
      let tau = Pattern.tau (Automaton.pattern automaton) in
      let sparse =
        materialize ?telemetry:options.Engine.telemetry prepared probes ~tau
      in
      let o =
        Executor.run ~options strategy automaton
          (Array.to_seq sparse.candidates)
      in
      (* Fold the rows the access path never delivered into the snapshot
         the way the stream runner folds store-side drops: every stored
         row counts as seen, the skipped ones as filtered, so the input
         side of the metrics reads the same across access paths. *)
      let rows = Relation.cardinality prepared.relation in
      let dropped = rows - Array.length sparse.candidates in
      let m = o.Engine.metrics in
      let metrics =
        {
          m with
          Metrics.events_seen = m.Metrics.events_seen + dropped;
          events_filtered = m.Metrics.events_filtered + dropped;
        }
      in
      {
        matches = o.Engine.matches;
        raw = o.Engine.raw;
        metrics;
        executor = Executor.strategy_name strategy;
        access;
        candidates = Array.length sparse.candidates;
        postings_scanned = sparse.postings_scanned;
        clipped = sparse.clipped;
      }
