(** Result tables for the experiment harness: aligned text rendering for
    the terminal and CSV export for plotting. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
}

val make : title:string -> headers:string list -> string list list -> t

val int_cell : int -> string

val float_cell : ?decimals:int -> float -> string
(** Fixed-point with the given decimals (default 3); very large magnitudes
    fall back to scientific notation. *)

val ratio_cell : int -> int -> string
(** [ratio_cell a b] renders a/b with one decimal; "-" when b = 0. *)

val pp : Format.formatter -> t -> unit
(** Title, rule, aligned columns. *)

val to_csv : t -> string

val save_csv : string -> t -> (unit, string) result
