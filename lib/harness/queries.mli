(** The patterns of the paper's evaluation (Sec. 5), over the chemotherapy
    schema of {!Ses_gen.Chemo}.

    - Experiment 1: P1/P2 with event set patterns growing from {c,d} to
      {c,d,p,v,r,l}, followed by {b}; Θ1 binds every variable to a distinct
      medication (pairwise mutually exclusive), Θ2 binds all variables to
      the same medication type.
    - Experiment 2: P3 = ⟨{c,d,p+},{b}⟩ and P4 = ⟨{c,d,p},{b}⟩, both with
      the non-exclusive Θ2.
    - Experiment 3: P5 = ⟨{c,d,p+},{b}⟩ with Θ1 and P6 with Θ2.

    τ is 264 hours everywhere, as in the paper. *)

open Ses_pattern

val tau : int

val q1 : Pattern.t
(** The running example's Query Q1: ⟨{c, p+, d}, {b}⟩ with per-patient ID
    joins. *)

val q1_complete : Pattern.t
(** Q1 with p as a singleton variable and the ID-join graph completed to
    all six variable pairs, which makes {!Ses_core.Partitioned} applicable
    (neither Q1's star-shaped joins nor its p+ loop allow it — see that
    module's documentation). *)

val exp1_exclusive : int -> Pattern.t
(** [exp1_exclusive n] is P1 restricted to the first [n] of c,d,p,v,r,l
    (2 ≤ n ≤ 6): each variable matches its own medication label, followed
    by {b}. *)

val exp1_overlapping : int -> Pattern.t
(** [exp1_overlapping n] is P2: same shape, every variable matches
    Prednisone administrations (L = 'P'). *)

val p3 : Pattern.t

val p4 : Pattern.t

val p5 : Pattern.t

val p6 : Pattern.t
(** Alias of {!p3}: the paper reuses the same pattern under both names. *)

val p6_dose : Pattern.t
(** P6 with an additional dose threshold (V ≥ 100) on every medication
    variable. Used by the filter ablation: the paper's any-condition
    filter keeps every P administration, while the strong per-variable
    filter also drops the low-dose ones. *)
