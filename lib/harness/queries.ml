open Ses_event
open Ses_pattern

let tau = 264

let schema = Ses_gen.Chemo.schema

(* Variable names and the medication label each one matches under the
   "distinct medications" condition sets (Θ1 of Experiment 1). *)
let med_vars =
  [ ("c", "C"); ("d", "D"); ("p", "P"); ("v", "V"); ("r", "R"); ("l", "L") ]

let label_cond name label =
  Pattern.Spec.const name "L" Predicate.Eq (Value.Str label)

let q1 =
  Pattern.make_exn ~schema
    ~sets:
      [
        [ Variable.singleton "c"; Variable.group "p"; Variable.singleton "d" ];
        [ Variable.singleton "b" ];
      ]
    ~where:
      ([
         label_cond "c" "C";
         label_cond "p" "P";
         label_cond "d" "D";
         label_cond "b" "B";
       ]
      @ Pattern.Spec.
          [
            fields "c" "ID" Predicate.Eq "p" "ID";
            fields "c" "ID" Predicate.Eq "d" "ID";
            fields "d" "ID" Predicate.Eq "b" "ID";
          ])
    ~within:tau

let q1_complete =
  Pattern.make_exn ~schema
    ~sets:
      [
        [ Variable.singleton "c"; Variable.singleton "p"; Variable.singleton "d" ];
        [ Variable.singleton "b" ];
      ]
    ~where:
      ([
         label_cond "c" "C";
         label_cond "p" "P";
         label_cond "d" "D";
         label_cond "b" "B";
       ]
      @ Pattern.Spec.
          [
            fields "c" "ID" Predicate.Eq "p" "ID";
            fields "c" "ID" Predicate.Eq "d" "ID";
            fields "c" "ID" Predicate.Eq "b" "ID";
            fields "p" "ID" Predicate.Eq "d" "ID";
            fields "p" "ID" Predicate.Eq "b" "ID";
            fields "d" "ID" Predicate.Eq "b" "ID";
          ])
    ~within:tau

let take n l = List.filteri (fun i _ -> i < n) l

let exp1_sets n =
  [
    List.map (fun (name, _) -> Variable.singleton name) (take n med_vars);
    [ Variable.singleton "b" ];
  ]

let exp1_exclusive n =
  if n < 2 || n > List.length med_vars then invalid_arg "Queries.exp1_exclusive";
  Pattern.make_exn ~schema ~sets:(exp1_sets n)
    ~where:
      (List.map (fun (name, label) -> label_cond name label) (take n med_vars)
      @ [ label_cond "b" "B" ])
    ~within:tau

let exp1_overlapping n =
  if n < 2 || n > List.length med_vars then
    invalid_arg "Queries.exp1_overlapping";
  Pattern.make_exn ~schema ~sets:(exp1_sets n)
    ~where:
      (List.map (fun (name, _) -> label_cond name "P") (take n med_vars)
      @ [ label_cond "b" "B" ])
    ~within:tau

let cdp_sets ~group =
  [
    [
      Variable.singleton "c";
      Variable.singleton "d";
      (if group then Variable.group "p" else Variable.singleton "p");
    ];
    [ Variable.singleton "b" ];
  ]

let same_type_conds =
  [
    label_cond "c" "P";
    label_cond "d" "P";
    label_cond "p" "P";
    label_cond "b" "B";
  ]

let distinct_conds =
  [
    label_cond "c" "C";
    label_cond "d" "D";
    label_cond "p" "P";
    label_cond "b" "B";
  ]

let p3 =
  Pattern.make_exn ~schema ~sets:(cdp_sets ~group:true) ~where:same_type_conds
    ~within:tau

let p4 =
  Pattern.make_exn ~schema ~sets:(cdp_sets ~group:false) ~where:same_type_conds
    ~within:tau

let p5 =
  Pattern.make_exn ~schema ~sets:(cdp_sets ~group:true) ~where:distinct_conds
    ~within:tau

let p6 = p3

let p6_dose =
  Pattern.make_exn ~schema ~sets:(cdp_sets ~group:true)
    ~where:
      (same_type_conds
      @ [
          Pattern.Spec.const "c" "V" Predicate.Ge (Value.Float 100.0);
          Pattern.Spec.const "d" "V" Predicate.Ge (Value.Float 100.0);
          Pattern.Spec.const "p" "V" Predicate.Ge (Value.Float 100.0);
        ])
    ~within:tau
