(** Index-accelerated execution over a stored relation.

    The physical side of {!Ses_core.Planner.choose_access}: when the
    planner picks an index path, this module probes the relation's
    secondary indexes (built lazily, one per probed attribute, and cached
    on the {!prepared} handle), residual-filters the postings against
    each variable's whole constant clause, unions the per-variable
    candidate sets, τ-clips the union, and feeds the surviving events —
    a sparse but still chronological stream — through the ordinary
    batched executor.

    {b Why the result is preserved.} The candidate union contains every
    event satisfying some variable's constant clause — exactly the events
    the plan's [Strong] filter keeps, which is every event any sound run
    can bind (negation triggers included). The τ-clip then drops a
    candidate only when some positive variable has {e no} candidate
    within τ of it: every match binds at least one event of each positive
    variable, and all events participating in a match — including the
    events that would kill it via a negation guard, which occur between
    the match's bound events — lie within τ of each other, so a clipped
    event can appear in no emitted match and kill no surviving one. *)

open Ses_event
open Ses_core

type prepared

val prepare : ?stats:Stats.t -> Relation.t -> prepared
(** Wraps a relation for repeated index-path runs. Statistics are
    computed on the spot when not supplied (catalog callers pass the
    persisted sidecar); indexes are built on first use per attribute and
    cached. *)

val relation : prepared -> Relation.t

val stats : prepared -> Stats.t

type sparse = {
  candidates : Event.t array;
      (** the τ-clipped candidate union, chronological *)
  postings_scanned : int;  (** events fetched from index postings *)
  key_probes : int;  (** individual key lookups issued *)
  clipped : int;  (** candidates dropped by the τ-clip *)
}

val materialize :
  ?telemetry:Telemetry.t ->
  prepared ->
  Planner.probe list ->
  tau:Time.duration ->
  sparse
(** Executes the probes. With [?telemetry], bumps the [index.probe],
    [index.postings_scanned] and [index.candidates] counters. *)

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
      (** input-compensated: rows the access path never delivered are
          folded into [events_seen]/[events_filtered], mirroring
          {!Stream_runner}'s treatment of store-side drops, so the input
          side reads the same across access paths. The work-side
          counters legitimately differ — doing less work is the point *)
  executor : string;
  access : Planner.access;  (** the decision actually taken *)
  candidates : int;  (** events the engine consumed *)
  postings_scanned : int;
  clipped : int;
}

val run :
  ?options:Engine.options ->
  ?strategy:Executor.strategy ->
  ?mode:Planner.access_mode ->
  prepared ->
  Automaton.t ->
  outcome
(** Plans, chooses the access path under [?mode] (default [`Auto]) and
    runs it: [Scan] delegates to {!Ses_core.Executor.run_relation},
    [Index_probe] feeds the materialized candidates through
    {!Ses_core.Executor.run}. Matches and raw emissions are equal either
    way. *)
