open Ses_event
open Ses_core

type config = {
  chemo : Ses_gen.Chemo.config;
  n_datasets : int;
  exp1_max_vars : int;
  repeats : int;
}

let default_config =
  {
    chemo =
      {
        Ses_gen.Chemo.default with
        Ses_gen.Chemo.patients = 4;
        horizon_days = 84;
        prednisone_days = 4;
      };
    n_datasets = 5;
    exp1_max_vars = 6;
    repeats = 1;
  }

let quick_config =
  {
    chemo =
      {
        Ses_gen.Chemo.default with
        Ses_gen.Chemo.patients = 6;
        horizon_days = 42;
        noise_per_day = 0.5;
      };
    n_datasets = 3;
    exp1_max_vars = 4;
    repeats = 1;
  }

let dataset cfg = Ses_gen.Chemo.generate cfg.chemo

let d_series cfg = Ses_gen.Dataset.d_series (dataset cfg) cfg.n_datasets

(* The measured loops never finalize and disable the engine's
   constant-condition pre-check: the paper measures the verbatim automaton
   execution. *)
let raw_options filter =
  {
    Engine.default_options with
    Engine.filter;
    finalize = false;
    precheck_constants = false;
  }

let ses_metrics ?(filter = Event_filter.No_filter) pattern relation =
  let automaton = Automaton.of_pattern pattern in
  (Engine.run_relation ~options:(raw_options filter) automaton relation).metrics

let bf_metrics ?(filter = Event_filter.No_filter) pattern relation =
  (Ses_baseline.Brute_force.run_relation ~options:(raw_options filter) pattern
     relation)
    .Ses_baseline.Brute_force.metrics

let datasets_table cfg =
  let rows =
    List.map
      (fun (name, r) ->
        [
          name;
          Report.int_cell (Relation.cardinality r);
          Report.int_cell (Relation.duration r);
          Report.int_cell (Relation.window_size r Queries.tau);
        ])
      (d_series cfg)
  in
  Report.make ~title:"Datasets (Sec. 5.1)"
    ~headers:[ "dataset"; "events"; "span"; "W(tau=264)" ]
    rows

let exp1 cfg =
  let d1 = dataset cfg in
  let results =
    List.init
      (max 0 (cfg.exp1_max_vars - 1))
      (fun i ->
        let n = i + 2 in
        let p1 = Queries.exp1_exclusive n and p2 = Queries.exp1_overlapping n in
        let ses1 = ses_metrics p1 d1 and ses2 = ses_metrics p2 d1 in
        let bf1 = bf_metrics p1 d1 and bf2 = bf_metrics p2 d1 in
        (n, ses1, bf1, ses2, bf2))
  in
  let inst (m : Metrics.snapshot) = m.Metrics.max_simultaneous_instances in
  let fig11 =
    Report.make
      ~title:
        "Experiment 1 (Fig. 11): max simultaneous automaton instances, D1"
      ~headers:[ "|V1|"; "SES P1"; "BF P1"; "SES P2"; "BF P2" ]
      (List.map
         (fun (n, ses1, bf1, ses2, bf2) ->
           [
             Report.int_cell n;
             Report.int_cell (inst ses1);
             Report.int_cell (inst bf1);
             Report.int_cell (inst ses2);
             Report.int_cell (inst bf2);
           ])
         results)
  in
  let table1 =
    Report.make
      ~title:"Experiment 1 (Table 1): instance ratio for P1"
      ~headers:[ "|V1|"; "|O|BF"; "|O|SES"; "BF/SES"; "(|V1|-1)!" ]
      (List.map
         (fun (n, ses1, bf1, _, _) ->
           [
             Report.int_cell n;
             Report.int_cell (inst bf1);
             Report.int_cell (inst ses1);
             Report.ratio_cell (inst bf1) (inst ses1);
             Report.int_cell (Ses_baseline.Permutation.factorial (n - 1));
           ])
         results)
  in
  (fig11, table1)

let exp2 cfg =
  let rows =
    List.map
      (fun (name, r) ->
        let w = Relation.window_size r Queries.tau in
        let m3 = ses_metrics Queries.p3 r and m4 = ses_metrics Queries.p4 r in
        [
          name;
          Report.int_cell w;
          Report.int_cell m3.Metrics.max_simultaneous_instances;
          Report.int_cell m4.Metrics.max_simultaneous_instances;
        ])
      (d_series cfg)
  in
  Report.make
    ~title:
      "Experiment 2 (Fig. 12): max simultaneous instances vs window size"
    ~headers:[ "dataset"; "W"; "SES P3 (case 3)"; "SES P4 (case 2)" ]
    rows

let timed_run cfg pattern filter relation =
  let automaton = Automaton.of_pattern pattern in
  let _, seconds =
    Timer.time_median ~repeats:cfg.repeats (fun () ->
        Engine.run_relation ~options:(raw_options filter) automaton relation)
  in
  seconds

let exp3 cfg =
  let rows =
    List.map
      (fun (name, r) ->
        let w = Relation.window_size r Queries.tau in
        let t5_no = timed_run cfg Queries.p5 Event_filter.No_filter r in
        let t5_f = timed_run cfg Queries.p5 Event_filter.Paper r in
        let t6_no = timed_run cfg Queries.p6 Event_filter.No_filter r in
        let t6_f = timed_run cfg Queries.p6 Event_filter.Paper r in
        [
          name;
          Report.int_cell w;
          Report.float_cell t5_no;
          Report.float_cell t5_f;
          Report.float_cell t6_no;
          Report.float_cell t6_f;
        ])
      (d_series cfg)
  in
  Report.make
    ~title:"Experiment 3 (Fig. 13): execution time [s] with/without filter"
    ~headers:
      [
        "dataset";
        "W";
        "P5 no filter";
        "P5 filter";
        "P6 no filter";
        "P6 filter";
      ]
    rows

let ablation_filter cfg =
  let d1 = dataset cfg in
  let modes =
    [
      ("none", Event_filter.No_filter);
      ("paper", Event_filter.Paper);
      ("strong", Event_filter.Strong);
    ]
  in
  let rows =
    List.concat_map
      (fun (pname, pattern) ->
        List.map
          (fun (mname, mode) ->
            let m = ses_metrics ~filter:mode pattern d1 in
            let t = timed_run cfg pattern mode d1 in
            [
              pname;
              mname;
              Report.int_cell m.Metrics.events_filtered;
              Report.int_cell m.Metrics.max_simultaneous_instances;
              Report.float_cell t;
            ])
          modes)
      [ ("P5", Queries.p5); ("P6", Queries.p6); ("P6+dose", Queries.p6_dose) ]
  in
  Report.make ~title:"Ablation: event filter variants on D1"
    ~headers:[ "pattern"; "filter"; "dropped"; "max |O|"; "time [s]" ]
    rows

let ablation_precheck cfg =
  let d1 = dataset cfg in
  let rows =
    List.concat_map
      (fun (pname, pattern) ->
        let automaton = Automaton.of_pattern pattern in
        List.map
          (fun (mname, precheck) ->
            let options =
              {
                (raw_options Event_filter.No_filter) with
                Engine.precheck_constants = precheck;
              }
            in
            let outcome, t =
              Timer.time_median ~repeats:cfg.repeats (fun () ->
                  Engine.run_relation ~options automaton d1)
            in
            [
              pname;
              mname;
              Report.int_cell (List.length outcome.Engine.raw);
              Report.float_cell t;
            ])
          [ ("per-instance", false); ("per-event", true) ])
      [ ("P4", Queries.p4); ("P6", Queries.p6) ]
  in
  Report.make
    ~title:"Ablation: constant-condition evaluation (per instance vs per event), D1"
    ~headers:[ "pattern"; "constants"; "raw matches"; "time [s]" ]
    rows

let ablation_partition cfg =
  let d1 = dataset cfg in
  (* All strategies evaluate the complete-join variant of Q1 so that the
     engine-level partitioned runner applies; on this workload its matches
     coincide with Q1's. *)
  let q = Queries.q1_complete in
  let automaton = Automaton.of_pattern q in
  let options = { Engine.default_options with Engine.finalize = false } in
  let finalize raw = Substitution.finalize q raw in
  let direct, t_direct =
    Timer.time_median ~repeats:cfg.repeats (fun () ->
        Engine.run_relation ~options automaton d1)
  in
  let parts, t_store =
    Timer.time_median ~repeats:cfg.repeats (fun () ->
        List.map
          (fun (_, part) -> Engine.run_relation ~options automaton part)
          (Ses_store.Partition.by_attribute d1 0))
  in
  let part_raw = List.concat_map (fun (o : Engine.outcome) -> o.raw) parts in
  let part_max =
    List.fold_left
      (fun acc (o : Engine.outcome) ->
        max acc o.metrics.Metrics.max_simultaneous_instances)
      0 parts
  in
  let pooled, t_pooled =
    Timer.time_median ~repeats:cfg.repeats (fun () ->
        Partitioned.run_relation ~options automaton d1)
  in
  Report.make
    ~title:
      "Ablation: Q1 (complete joins) direct vs partitioned evaluation (D1)"
    ~headers:[ "strategy"; "matches"; "max |O|"; "time [s]" ]
    [
      [
        "direct";
        Report.int_cell (List.length (finalize direct.Engine.raw));
        Report.int_cell direct.Engine.metrics.Metrics.max_simultaneous_instances;
        Report.float_cell t_direct;
      ];
      [
        "store partitions";
        Report.int_cell (List.length (finalize part_raw));
        Report.int_cell part_max;
        Report.float_cell t_store;
      ];
      [
        "pooled instances";
        Report.int_cell (List.length (finalize pooled.Engine.raw));
        Report.int_cell pooled.Engine.metrics.Metrics.max_simultaneous_instances;
        Report.float_cell t_pooled;
      ];
    ]

(* Beyond-paper sweeps. *)

let sweep_set_size cfg =
  let d1 = dataset cfg in
  let w = Relation.window_size d1 Queries.tau in
  let make_pattern ~group k =
    let open Ses_pattern in
    let vars =
      List.init k (fun i ->
          let name = Printf.sprintf "v%d" i in
          if group && i = k - 1 then Variable.group name
          else Variable.singleton name)
    in
    let conds =
      List.init k (fun i ->
          Pattern.Spec.const (Printf.sprintf "v%d" i) "L" Ses_event.Predicate.Eq
            (Ses_event.Value.Str "P"))
      @ [ Pattern.Spec.const "b" "L" Ses_event.Predicate.Eq (Ses_event.Value.Str "B") ]
    in
    Pattern.make_exn ~schema:Ses_gen.Chemo.schema
      ~sets:[ vars; [ Variable.singleton "b" ] ]
      ~where:conds ~within:Queries.tau
  in
  let rows =
    List.map
      (fun k ->
        let p2 = make_pattern ~group:false k in
        let p3 = make_pattern ~group:true k in
        let m2 = ses_metrics p2 d1 and m3 = ses_metrics p3 d1 in
        [
          Report.int_cell k;
          Report.int_cell m2.Metrics.max_simultaneous_instances;
          Report.float_cell ~decimals:0 (Bounds.overall p2 ~w);
          Report.int_cell m3.Metrics.max_simultaneous_instances;
          Report.float_cell ~decimals:0 (Bounds.overall p3 ~w);
        ])
      [ 2; 3; 4 ]
  in
  Report.make
    ~title:
      "Sweep: set size |V1| vs measured peak and Theorem 2/3 bounds (D1)"
    ~headers:
      [ "|V1|"; "case 2 peak"; "case 2 bound"; "case 3 peak"; "case 3 bound" ]
    rows

let sweep_selectivity cfg =
  (* Fraction of matching events vs work: an overlapping two-variable
     pattern over a synthetic relation whose label alphabet grows, so the
     matching fraction is 1/n_labels. *)
  ignore cfg;
  let open Ses_pattern in
  let pattern_sel =
    Pattern.make_exn ~schema:Ses_gen.Random_workload.schema
      ~sets:
        [
          [ Variable.singleton "x"; Variable.singleton "y" ];
          [ Variable.singleton "z" ];
        ]
      ~where:
        [
          Pattern.Spec.const "x" "L" Ses_event.Predicate.Eq (Ses_event.Value.Str "a");
          Pattern.Spec.const "y" "L" Ses_event.Predicate.Eq (Ses_event.Value.Str "a");
          Pattern.Spec.const "z" "L" Ses_event.Predicate.Eq (Ses_event.Value.Str "a");
        ]
      ~within:40
  in
  let automaton = Automaton.of_pattern pattern_sel in
  let rows =
    List.map
      (fun n_labels ->
        let rng = Ses_gen.Prng.create 0x5E1EC7L in
        let r =
          Ses_gen.Random_workload.relation rng
            {
              Ses_gen.Random_workload.default_relation with
              Ses_gen.Random_workload.n_events = 1500;
              n_labels;
              max_gap = 2;
            }
        in
        let options = raw_options Event_filter.No_filter in
        let outcome, t =
          Timer.time (fun () -> Engine.run_relation ~options automaton r)
        in
        [
          Report.int_cell n_labels;
          Report.float_cell ~decimals:2 (1.0 /. float_of_int n_labels);
          Report.int_cell outcome.Engine.metrics.Metrics.max_simultaneous_instances;
          Report.int_cell (List.length outcome.Engine.raw);
          Report.float_cell t;
        ])
      [ 1; 2; 4; 8 ]
  in
  Report.make
    ~title:"Sweep: event selectivity vs peak instances and time (1.5k events)"
    ~headers:[ "labels"; "match fraction"; "peak |O|"; "raw matches"; "time [s]" ]
    rows

let run_all ?csv_dir ~ppf cfg =
  let save name table =
    match csv_dir with
    | None -> ()
    | Some dir -> (
        match Report.save_csv (Filename.concat dir (name ^ ".csv")) table with
        | Ok () -> ()
        | Error msg -> Printf.eprintf "warning: %s\n" msg)
  in
  let show name table =
    Format.fprintf ppf "%a@.@." Report.pp table;
    save name table
  in
  show "datasets" (datasets_table cfg);
  let fig11, table1 = exp1 cfg in
  show "exp1_fig11" fig11;
  show "exp1_table1" table1;
  show "exp2_fig12" (exp2 cfg);
  show "exp3_fig13" (exp3 cfg);
  show "ablation_filter" (ablation_filter cfg);
  show "ablation_precheck" (ablation_precheck cfg);
  show "ablation_partition" (ablation_partition cfg);
  show "sweep_set_size" (sweep_set_size cfg);
  show "sweep_selectivity" (sweep_selectivity cfg)
