open Ses_pattern

let float_factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc *. float_of_int k) (k - 1) in
  go 1.0 n

let per_set p i ~w =
  let size = List.length (Pattern.set_vars p i) in
  match Exclusivity.classify_set p i with
  | Exclusivity.Exclusive -> 1.0
  | Exclusivity.Overlapping -> float_factorial size
  | Exclusivity.Overlapping_with_groups 1 ->
      float_factorial (size - 1) *. (float_of_int w ** float_of_int size)
  | Exclusivity.Overlapping_with_groups k ->
      float_of_int k
      *. float_factorial (size - 1)
      *. (float_of_int k ** float_of_int (w * size))

let overall p ~w =
  let n = Pattern.n_sets p in
  let worst =
    List.fold_left
      (fun acc i -> Float.max acc (per_set p i ~w))
      0.0
      (List.init n Fun.id)
  in
  float_of_int w *. (worst ** float_of_int n)

let describe p ~w =
  let lines =
    List.init (Pattern.n_sets p) (fun i ->
        Format.asprintf "V%d %a: bound %g" (i + 1) Exclusivity.pp_case
          (Exclusivity.classify_set p i) (per_set p i ~w))
  in
  String.concat "\n"
    (lines @ [ Printf.sprintf "overall: %g" (overall p ~w) ])
