(** Runners for the paper's experiments (Sec. 5) and for this repository's
    ablations. Each runner returns printable {!Report.t} tables; the
    numbers regenerate the corresponding paper figure/table on the
    synthetic chemotherapy workload (shapes, not absolute values — see
    EXPERIMENTS.md).

    All runners execute the engines with finalization disabled: the
    post-processing of Definition 2's conditions 4–5 is not part of the
    measured algorithms in the paper, and the measured quantities (|Ω|,
    execution time of the automaton loop) do not depend on it. *)

open Ses_event

type config = {
  chemo : Ses_gen.Chemo.config;  (** the D1 generator *)
  n_datasets : int;  (** D1 … Dn for Experiments 2 and 3 *)
  exp1_max_vars : int;  (** grow |V1| from 2 to this (≤ 6) *)
  repeats : int;  (** timing repetitions (median) *)
}

val default_config : config

val quick_config : config
(** A small instance for tests and smoke runs. *)

val dataset : config -> Relation.t
(** The D1 relation for this configuration (generated deterministically). *)

val datasets_table : config -> Report.t
(** Cardinality and window size of D1 … Dn (the paper's Sec. 5.1 listing). *)

val exp1 : config -> Report.t * Report.t
(** Figure 11 (max simultaneous instances, SES vs. brute force, P1 and P2,
    |V1| from 2 to [exp1_max_vars]) and Table 1 (instance-count ratio for
    P1 against (|V1|−1)!). *)

val exp2 : config -> Report.t
(** Figure 12: max simultaneous instances of P3 (case 3) and P4 (case 2)
    against the window size W of D1 … Dn. *)

val exp3 : config -> Report.t
(** Figure 13: execution time of P5 and P6 with and without the Sec. 4.5
    event filter against W. *)

val ablation_filter : config -> Report.t
(** Paper filter vs. this repository's strong filter vs. none, on P5/P6:
    events dropped and execution time. *)

val ablation_precheck : config -> Report.t
(** Per-instance (the paper's loop) vs. per-event evaluation of constant
    transition conditions ({!Ses_core.Engine.options.precheck_constants}):
    identical raw output, different work. *)

val ablation_partition : config -> Report.t
(** The running example's Q1 evaluated directly vs. per patient partition
    (the ID-join conditions make partitions independent): time, peak |Ω|
    and match count. *)

val sweep_set_size : config -> Report.t
(** Beyond the paper: measured peak instance counts against the Theorem
    2/3 bounds while the first event set pattern grows (cases 2 and 3). *)

val sweep_selectivity : config -> Report.t
(** Beyond the paper: work as a function of the fraction of events that
    can bind a variable (label alphabet of a synthetic relation). *)

val run_all : ?csv_dir:string -> ppf:Format.formatter -> config -> unit
(** Prints every table to [ppf]; with [csv_dir], also saves one CSV per
    table. *)
