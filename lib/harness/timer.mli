(** Wall-clock timing for the experiment harness. *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Runs the thunk [repeats] times (default 3) and reports the median
    elapsed time with the last result. *)
