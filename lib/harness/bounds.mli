(** Theoretical upper bounds on the number of simultaneous automaton
    instances (Theorems 1–3, Sec. 4.4).

    The theorems bound the instances branching from {e one} instance
    started in the start state of an automaton for a single event set
    pattern V1:

    - case 1 (pairwise mutually exclusive): O(1);
    - case 2 (overlapping, no groups): O(|V1|!);
    - case 3 with k = 1 group variable: O((|V1|−1)! · W^|V1|);
    - case 3 with k > 1: O(k · (|V1|−1)! · k^(W·|V1|)).

    For a pattern with n event set patterns the overall bound is
    O(W · (|Ω|max)^n), where |Ω|max is the worst per-set bound and the
    leading W accounts for the one fresh instance opened per event of a
    τ-window. Bounds are returned as floats because case 3 overflows any
    integer type already for toy parameters; [infinity] signals overflow. *)

open Ses_pattern

val per_set : Pattern.t -> int -> w:int -> float
(** Bound for one event set pattern per Theorems 1–3, given window size
    [w]. *)

val overall : Pattern.t -> w:int -> float
(** W · (max per-set bound)^n. *)

val describe : Pattern.t -> w:int -> string
(** Case classification and bounds, one line per event set pattern. *)
