(** Tabular rendering of match results: one row per matching substitution,
    one column per pattern variable (group variables list all their
    bindings), plus the match's time span. Used by the CLI's
    [match --table]. *)

open Ses_pattern
open Ses_core

val of_matches : Pattern.t -> Substitution.t list -> Report.t
