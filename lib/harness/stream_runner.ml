open Ses_event
open Ses_pattern
open Ses_core

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
  executor : string;
  events_scanned : int;
  events_delivered : int;
  pushed : Ses_store.Selection.predicate option;
}

let selection_of_pattern ?extra p =
  match Event_filter.strong_clauses ?extra p with
  | None -> None
  | Some clauses ->
      let schema = Pattern.schema p in
      Some
        (Ses_store.Selection.disj
           (List.map
              (fun clause ->
                Ses_store.Selection.conj
                  (List.map
                     (fun (field, op, v) ->
                       Ses_store.Selection.attr
                         (Schema.Field.name schema field) op v)
                     clause))
              clauses))

(* Per-field selectivity telemetry over a pushed-down selection: each
   atom actually evaluated bumps [csv.select.<field>.tested] and, when
   it holds, [csv.select.<field>.passed]. Counts accumulate in plain
   per-field cells on the hot path and drain into the shared counters
   through the returned flush — called once per delivered chunk — so an
   instrumented scan pays two int stores per atom, not a counter update.
   Handles are memoized per field name. *)
type trace_cell = {
  c_tested : Telemetry.Counter.t;
  c_passed : Telemetry.Counter.t;
  mutable n_tested : int;
  mutable n_passed : int;
}

let traced_selection tl schema p =
  let handles : (string, trace_cell) Hashtbl.t = Hashtbl.create 8 in
  let cells = ref [] in
  let resolve name =
    match Hashtbl.find_opt handles name with
    | Some cell -> cell
    | None ->
        let cell =
          {
            c_tested =
              Telemetry.counter tl (Printf.sprintf "csv.select.%s.tested" name);
            c_passed =
              Telemetry.counter tl (Printf.sprintf "csv.select.%s.passed" name);
            n_tested = 0;
            n_passed = 0;
          }
        in
        Hashtbl.add handles name cell;
        cells := cell :: !cells;
        cell
  in
  let trace name passed =
    let cell = resolve name in
    cell.n_tested <- cell.n_tested + 1;
    if passed then cell.n_passed <- cell.n_passed + 1
  in
  let flush () =
    List.iter
      (fun cell ->
        if cell.n_tested > 0 then begin
          Telemetry.Counter.add cell.c_tested cell.n_tested;
          cell.n_tested <- 0
        end;
        if cell.n_passed > 0 then begin
          Telemetry.Counter.add cell.c_passed cell.n_passed;
          cell.n_passed <- 0
        end)
      !cells
  in
  Result.map
    (fun f -> (f, flush))
    (Ses_store.Selection.compile_traced ~trace schema p)

let run ?(options = Engine.default_options) ?(strategy = `Auto)
    ?(push_filter = true) ~query path =
  Ses_baseline.Brute_force.register ();
  Ses_store.Csv_stream.with_source path (fun src ->
      match query (Ses_store.Csv_stream.source_schema src) with
      | Error _ as e -> e
      | Ok automaton -> (
          let pattern = Automaton.pattern automaton in
          (* When the static analyzer is registered, push its inferred
             constants down to the source as well — they are implied by
             the pattern, so the selection stays result-preserving. *)
          let extra =
            match Planner.analyze automaton with
            | Some a -> a.Planner.filter_extras
            | None -> []
          in
          let pushed =
            if push_filter then selection_of_pattern ~extra pattern else None
          in
          (* [install] yields the per-chunk trace flush (a no-op when
             the scan is untraced). *)
          let install =
            match pushed with
            | None -> Ok (fun () -> ())
            | Some p -> (
                match options.Engine.telemetry with
                | None ->
                    Result.map
                      (fun () -> fun () -> ())
                      (Ses_store.Csv_stream.push_selection src p)
                | Some tl ->
                    Result.map
                      (fun (f, flush) ->
                        Ses_store.Csv_stream.set_filter src f;
                        flush)
                      (traced_selection tl
                         (Ses_store.Csv_stream.source_schema src)
                         p))
          in
          match install with
          | Error _ as e -> e
          | Ok flush_trace -> (
              let exec = Executor.create ~options strategy automaton in
              let rate =
                Option.map
                  (fun tl ->
                    (tl, Telemetry.gauge tl "stream.rows_per_sec"))
                  options.Engine.telemetry
              in
              (* Chunked delivery: the scan yields filtered chunks of
                 [options.batch_size] events that go straight into the
                 executor's batched path — no per-event re-boxing in
                 between — and the delivery-rate gauge and the traced
                 selection counters settle once per chunk. *)
              let chunk = max 1 options.Engine.batch_size in
              let feed_all () =
                let mark =
                  ref (match rate with None -> 0 | Some (tl, _) -> Telemetry.now tl)
                in
                let rec go () =
                  match Ses_store.Csv_stream.next_batch src chunk with
                  | Error _ as e -> e
                  | Ok [||] -> Ok ()
                  | Ok es ->
                      ignore (Executor.feed_batch exec es);
                      flush_trace ();
                      (match rate with
                      | None -> ()
                      | Some (tl, g) ->
                          let t = Telemetry.now tl in
                          let dt = t - !mark in
                          if dt > 0 then
                            Telemetry.Gauge.observe g
                              (Array.length es * 1_000_000_000 / dt);
                          mark := t);
                      go ()
                in
                go ()
              in
              match feed_all () with
              | Error _ as e -> e
              | Ok () ->
                  ignore (Executor.close exec);
                  let raw = Executor.emitted exec in
                  let finalize () =
                    if options.Engine.finalize then
                      Substitution.finalize ~policy:options.Engine.policy
                        pattern raw
                    else raw
                  in
                  let matches =
                    match options.Engine.telemetry with
                    | None -> finalize ()
                    | Some tl ->
                        Telemetry.Span.record
                          (Telemetry.span tl "finalize")
                          finalize
                  in
                  let scanned = Ses_store.Csv_stream.scanned src in
                  let dropped = Ses_store.Csv_stream.dropped src in
                  (* Account for store-side drops so the snapshot reads
                     the same as an in-engine filter would: every scanned
                     row was "seen", the pushed-down rejections were
                     "filtered". *)
                  let m = Executor.metrics exec in
                  let metrics =
                    {
                      m with
                      Metrics.events_seen = m.Metrics.events_seen + dropped;
                      events_filtered = m.Metrics.events_filtered + dropped;
                    }
                  in
                  Ok
                    {
                      matches;
                      raw;
                      metrics;
                      executor = Executor.name exec;
                      events_scanned = scanned;
                      events_delivered = scanned - dropped;
                      pushed;
                    })))
