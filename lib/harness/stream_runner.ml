open Ses_event
open Ses_pattern
open Ses_core

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
  executor : string;
  events_scanned : int;
  events_delivered : int;
  pushed : Ses_store.Selection.predicate option;
}

let selection_of_pattern p =
  match Event_filter.strong_clauses p with
  | None -> None
  | Some clauses ->
      let schema = Pattern.schema p in
      Some
        (Ses_store.Selection.disj
           (List.map
              (fun clause ->
                Ses_store.Selection.conj
                  (List.map
                     (fun (field, op, v) ->
                       Ses_store.Selection.attr
                         (Schema.Field.name schema field) op v)
                     clause))
              clauses))

let run ?(options = Engine.default_options) ?(strategy = `Auto)
    ?(push_filter = true) ~query path =
  Ses_baseline.Brute_force.register ();
  Ses_store.Csv_stream.with_source path (fun src ->
      match query (Ses_store.Csv_stream.source_schema src) with
      | Error _ as e -> e
      | Ok automaton -> (
          let pattern = Automaton.pattern automaton in
          let pushed =
            if push_filter then selection_of_pattern pattern else None
          in
          let install =
            match pushed with
            | None -> Ok ()
            | Some p -> Ses_store.Csv_stream.push_selection src p
          in
          match install with
          | Error _ as e -> e
          | Ok () -> (
              let exec = Executor.create ~options strategy automaton in
              let feed_all () =
                let rec go () =
                  match Ses_store.Csv_stream.next src with
                  | Error _ as e -> e
                  | Ok None -> Ok ()
                  | Ok (Some e) ->
                      ignore (Executor.feed exec e);
                      go ()
                in
                go ()
              in
              match feed_all () with
              | Error _ as e -> e
              | Ok () ->
                  ignore (Executor.close exec);
                  let raw = Executor.emitted exec in
                  let matches =
                    if options.Engine.finalize then
                      Substitution.finalize ~policy:options.Engine.policy
                        pattern raw
                    else raw
                  in
                  let scanned = Ses_store.Csv_stream.scanned src in
                  let dropped = Ses_store.Csv_stream.dropped src in
                  (* Account for store-side drops so the snapshot reads
                     the same as an in-engine filter would: every scanned
                     row was "seen", the pushed-down rejections were
                     "filtered". *)
                  let m = Executor.metrics exec in
                  let metrics =
                    {
                      m with
                      Metrics.events_seen = m.Metrics.events_seen + dropped;
                      events_filtered = m.Metrics.events_filtered + dropped;
                    }
                  in
                  Ok
                    {
                      matches;
                      raw;
                      metrics;
                      executor = Executor.name exec;
                      events_scanned = scanned;
                      events_delivered = scanned - dropped;
                      pushed;
                    })))
