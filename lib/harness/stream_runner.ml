open Ses_event
open Ses_pattern
open Ses_core

type outcome = {
  matches : Substitution.t list;
  raw : Substitution.t list;
  metrics : Metrics.snapshot;
  executor : string;
  events_scanned : int;
  events_delivered : int;
  pushed : Ses_store.Selection.predicate option;
}

let selection_of_pattern ?extra p =
  match Event_filter.strong_clauses ?extra p with
  | None -> None
  | Some clauses ->
      let schema = Pattern.schema p in
      Some
        (Ses_store.Selection.disj
           (List.map
              (fun clause ->
                Ses_store.Selection.conj
                  (List.map
                     (fun (field, op, v) ->
                       Ses_store.Selection.attr
                         (Schema.Field.name schema field) op v)
                     clause))
              clauses))

(* Per-field selectivity telemetry over a pushed-down selection: each
   atom actually evaluated bumps [csv.select.<field>.tested] and, when
   it holds, [csv.select.<field>.passed]. Handles are memoized per field
   name, so the per-row cost is one small Hashtbl lookup per atom — and
   only on instrumented runs. *)
let traced_selection tl schema p =
  let handles = Hashtbl.create 8 in
  let resolve name =
    match Hashtbl.find_opt handles name with
    | Some h -> h
    | None ->
        let h =
          ( Telemetry.counter tl (Printf.sprintf "csv.select.%s.tested" name),
            Telemetry.counter tl (Printf.sprintf "csv.select.%s.passed" name) )
        in
        Hashtbl.add handles name h;
        h
  in
  let trace name passed =
    let tested, ok = resolve name in
    Telemetry.Counter.incr tested;
    if passed then Telemetry.Counter.incr ok
  in
  Ses_store.Selection.compile_traced ~trace schema p

(* Sample the delivery rate into a [stream.rows_per_sec] gauge every
   [rate_window] delivered events — frequent enough to catch phases,
   rare enough to stay off the hot path. *)
let rate_window = 1024

let run ?(options = Engine.default_options) ?(strategy = `Auto)
    ?(push_filter = true) ~query path =
  Ses_baseline.Brute_force.register ();
  Ses_store.Csv_stream.with_source path (fun src ->
      match query (Ses_store.Csv_stream.source_schema src) with
      | Error _ as e -> e
      | Ok automaton -> (
          let pattern = Automaton.pattern automaton in
          (* When the static analyzer is registered, push its inferred
             constants down to the source as well — they are implied by
             the pattern, so the selection stays result-preserving. *)
          let extra =
            match Planner.analyze automaton with
            | Some a -> a.Planner.filter_extras
            | None -> []
          in
          let pushed =
            if push_filter then selection_of_pattern ~extra pattern else None
          in
          let install =
            match pushed with
            | None -> Ok ()
            | Some p -> (
                match options.Engine.telemetry with
                | None -> Ses_store.Csv_stream.push_selection src p
                | Some tl ->
                    Result.map
                      (Ses_store.Csv_stream.set_filter src)
                      (traced_selection tl
                         (Ses_store.Csv_stream.source_schema src)
                         p))
          in
          match install with
          | Error _ as e -> e
          | Ok () -> (
              let exec = Executor.create ~options strategy automaton in
              let rate =
                Option.map
                  (fun tl ->
                    (tl, Telemetry.gauge tl "stream.rows_per_sec"))
                  options.Engine.telemetry
              in
              let feed_all () =
                let mark =
                  ref (match rate with None -> 0 | Some (tl, _) -> Telemetry.now tl)
                in
                let delivered = ref 0 in
                let rec go () =
                  match Ses_store.Csv_stream.next src with
                  | Error _ as e -> e
                  | Ok None -> Ok ()
                  | Ok (Some e) ->
                      ignore (Executor.feed exec e);
                      (match rate with
                      | None -> ()
                      | Some (tl, g) ->
                          incr delivered;
                          if !delivered mod rate_window = 0 then begin
                            let t = Telemetry.now tl in
                            let dt = t - !mark in
                            if dt > 0 then
                              Telemetry.Gauge.observe g
                                (rate_window * 1_000_000_000 / dt);
                            mark := t
                          end);
                      go ()
                in
                go ()
              in
              match feed_all () with
              | Error _ as e -> e
              | Ok () ->
                  ignore (Executor.close exec);
                  let raw = Executor.emitted exec in
                  let finalize () =
                    if options.Engine.finalize then
                      Substitution.finalize ~policy:options.Engine.policy
                        pattern raw
                    else raw
                  in
                  let matches =
                    match options.Engine.telemetry with
                    | None -> finalize ()
                    | Some tl ->
                        Telemetry.Span.record
                          (Telemetry.span tl "finalize")
                          finalize
                  in
                  let scanned = Ses_store.Csv_stream.scanned src in
                  let dropped = Ses_store.Csv_stream.dropped src in
                  (* Account for store-side drops so the snapshot reads
                     the same as an in-engine filter would: every scanned
                     row was "seen", the pushed-down rejections were
                     "filtered". *)
                  let m = Executor.metrics exec in
                  let metrics =
                    {
                      m with
                      Metrics.events_seen = m.Metrics.events_seen + dropped;
                      events_filtered = m.Metrics.events_filtered + dropped;
                    }
                  in
                  Ok
                    {
                      matches;
                      raw;
                      metrics;
                      executor = Executor.name exec;
                      events_scanned = scanned;
                      events_delivered = scanned - dropped;
                      pushed;
                    })))
