open Ses_event
open Ses_pattern
open Ses_core

let cell_of_bindings events =
  String.concat " "
    (List.map (fun e -> Printf.sprintf "%s@%d" (Event.name e) (Event.ts e)) events)

let of_matches p matches =
  let vars = List.init (Pattern.n_vars p) Fun.id in
  let headers = "#" :: List.map (Pattern.var_name p) vars @ [ "span" ] in
  let rows =
    List.mapi
      (fun i subst ->
        Report.int_cell (i + 1)
        :: List.map
             (fun v -> cell_of_bindings (Substitution.bindings_of subst v))
             vars
        @ [ Report.int_cell (Substitution.span subst) ])
      matches
  in
  Report.make
    ~title:(Printf.sprintf "%d match%s" (List.length matches)
              (if List.length matches = 1 then "" else "es"))
    ~headers rows
