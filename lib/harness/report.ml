type t = {
  title : string;
  headers : string list;
  rows : string list list;
}

let make ~title ~headers rows = { title; headers; rows }

let int_cell = string_of_int

let float_cell ?(decimals = 3) f =
  if Float.is_integer f && Float.abs f < 1e15 && decimals = 0 then
    Printf.sprintf "%.0f" f
  else if Float.abs f >= 1e9 then Printf.sprintf "%.3e" f
  else Printf.sprintf "%.*f" decimals f

let ratio_cell a b =
  if b = 0 then "-" else Printf.sprintf "%.1f" (float_of_int a /. float_of_int b)

let widths t =
  let all = t.headers :: t.rows in
  let n = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let w = Array.make n 0 in
  List.iter
    (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)))
    all;
  w

let pp ppf t =
  let w = widths t in
  let pad i cell = cell ^ String.make (w.(i) - String.length cell) ' ' in
  let pp_row row =
    Format.fprintf ppf "  %s@,"
      (String.trim (String.concat "  " (List.mapi pad row)))
  in
  Format.fprintf ppf "@[<v>%s@," t.title;
  Format.fprintf ppf "%s@," (String.make (String.length t.title) '-');
  pp_row t.headers;
  List.iter pp_row t.rows;
  Format.fprintf ppf "@]"

let csv_field s =
  if String.exists (function ',' | '"' | '\n' -> true | _ -> false) s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_field row) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"

let save_csv path t =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_csv t));
    Ok ()
  with Sys_error msg -> Error msg
