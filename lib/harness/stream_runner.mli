(** End-to-end streaming evaluation: store scan → executor → matches.

    Pipes a {!Ses_store.Csv_stream} source into a {!Ses_core.Executor}
    chosen by strategy (planner-auto by default) in filtered chunks of
    [options.batch_size] events ({!Ses_store.Csv_stream.next_batch} into
    [Executor.feed_batch], with no per-event re-boxing in between), so a
    query over an archived relation runs in O(batch) memory in the input
    — no [Relation.t] is ever materialized. Instrumented runs record a
    [stream.rows_per_sec] gauge sample and settle the traced-selection
    counters once per chunk. The Sec. 4.5 constant-condition
    event filter is pushed {e down into the store-side scan} whenever the
    pattern supports the strong form (every variable carries at least one
    constant condition): rows no variable could bind are dropped before
    the engine sees them, while sequence numbers are still assigned to
    every scanned row so the surviving events — and hence the matches —
    are identical to the materialized path's. *)

open Ses_event
open Ses_pattern
open Ses_core

type outcome = {
  matches : Substitution.t list;  (** finalized (unless options say not to) *)
  raw : Substitution.t list;  (** raw executor emissions *)
  metrics : Metrics.snapshot;
      (** store-side drops folded in: [events_seen] counts every scanned
          row, [events_filtered] includes pushed-down rejections, so the
          snapshot reads the same as an in-engine filter would. *)
  executor : string;  (** name of the strategy that ran *)
  events_scanned : int;  (** rows read from the file *)
  events_delivered : int;  (** rows that reached the executor *)
  pushed : Ses_store.Selection.predicate option;
      (** the predicate pushed into the scan, if any *)
}

val selection_of_pattern :
  ?extra:
    (int
    * (Ses_event.Schema.Field.t * Ses_event.Predicate.op * Ses_event.Value.t)
      list)
    list ->
  Pattern.t ->
  Ses_store.Selection.predicate option
(** The strong-mode Sec. 4.5 filter as a store predicate: a disjunction
    over variables of the conjunction of that variable's constant
    conditions. [None] when some variable has no constant condition
    (the strong filter would be unsound to push). [extra] adds implied
    per-variable constants (from the static analyzer) to each variable's
    conjunction; a variable constrained only through [extra] counts as
    constrained. *)

val run :
  ?options:Engine.options ->
  ?strategy:Executor.strategy ->
  ?push_filter:bool ->
  query:(Schema.t -> (Automaton.t, string) result) ->
  string ->
  (outcome, string) result
(** [run ~query path] opens [path], hands the parsed schema to [query]
    to build the automaton, and streams every event through the chosen
    executor ([?strategy] defaults to [`Auto]; [?push_filter], default
    [true], controls the store-side filter pushdown). Registers the
    brute-force executor so [`Brute_force] works out of the box. Errors
    are file/parse/ordering problems reported by the store layer, or the
    [query] callback's own failure. *)
