let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_median ?(repeats = 3) f =
  if repeats < 1 then invalid_arg "Timer.time_median";
  let runs = List.init repeats (fun _ -> time f) in
  let times = List.sort Float.compare (List.map snd runs) in
  let median = List.nth times (repeats / 2) in
  match List.rev runs with
  | (last, _) :: _ -> (last, median)
  | [] -> assert false
