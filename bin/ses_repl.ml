(* ses_repl — an interactive shell over the SES library.

   Load a CSV relation, define named patterns in the query language, and
   inspect / run / trace them. Reads commands from stdin (one per line; a
   trailing backslash continues on the next line), so it works both
   interactively and piped:

     $ dune exec bin/ses_repl.exe
     ses> load chemo.csv
     ses> let q1 = PATTERN (c, p+, d) -> (b) WHERE ... WITHIN 11 DAYS
     ses> run q1

   Commands: help, load, schema, count, window, let, list, show, analyze,
   plan, run, trace, dot, quit. *)

type state = {
  mutable relation : Ses_event.Relation.t option;
  mutable patterns : (string * Ses_pattern.Pattern.t) list;
}

let help_text =
  "commands:\n\
  \  load <file.csv>          load an event relation\n\
  \  schema                   show the loaded relation's schema\n\
  \  count                    number of events\n\
  \  window <tau>             window size W (Definition 5)\n\
  \  let <name> = <query>     define a pattern (query language;\n\
  \                           end a line with \\ to continue)\n\
  \  list                     defined patterns\n\
  \  show <name>              pattern, automaton size, complexity cases\n\
  \  analyze <name>           static diagnostics and pruning summary\n\
  \  plan <name>              execution plan the library would pick\n\
  \  run <name>               match the pattern against the relation\n\
  \  trace <name> [n]         execution narrative (first n steps)\n\
  \  dot <name>               Graphviz source of the automaton\n\
  \  quit                     leave"

let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let relation_of st =
  match st.relation with
  | Some r -> Ok r
  | None -> fail "no relation loaded (use: load <file.csv>)"

let pattern_of st name =
  match List.assoc_opt name st.patterns with
  | Some p -> Ok p
  | None -> fail "no pattern named %S (use: let %s = PATTERN ...)" name name

let cmd_load st path =
  match Ses_store.Csv.load path with
  | Error e -> Error e
  | Ok r ->
      st.relation <- Some r;
      Ok
        (Printf.sprintf "loaded %d events from %s"
           (Ses_event.Relation.cardinality r)
           path)

let cmd_schema st =
  Result.map
    (fun r ->
      Format.asprintf "%a" Ses_event.Schema.pp (Ses_event.Relation.schema r))
    (relation_of st)

let cmd_count st =
  Result.map
    (fun r -> string_of_int (Ses_event.Relation.cardinality r))
    (relation_of st)

let cmd_window st arg =
  match relation_of st, int_of_string_opt arg with
  | Error e, _ -> Error e
  | Ok _, None -> fail "window expects an integer duration"
  | Ok r, Some tau ->
      Ok (Printf.sprintf "W(tau=%d) = %d" tau (Ses_event.Relation.window_size r tau))

let cmd_let st rest =
  match String.index_opt rest '=' with
  | None -> fail "usage: let <name> = <query>"
  | Some i -> (
      let name = String.trim (String.sub rest 0 i) in
      let query = String.sub rest (i + 1) (String.length rest - i - 1) in
      if name = "" then fail "usage: let <name> = <query>"
      else
        match relation_of st with
        | Error e -> Error e
        | Ok r -> (
            match
              Ses_lang.Lang.parse_pattern (Ses_event.Relation.schema r) query
            with
            | Error e -> Error e
            | Ok p ->
                st.patterns <- (name, p) :: List.remove_assoc name st.patterns;
                let result = Ses_analysis.Analyzer.analyze_pattern p in
                let worth_reporting =
                  List.filter
                    (fun (d : Ses_analysis.Diagnostic.t) ->
                      match d.severity with
                      | Error | Warning -> true
                      | Info -> false)
                    result.Ses_analysis.Analyzer.diagnostics
                in
                let buf = Buffer.create 128 in
                Buffer.add_string buf
                  (Format.asprintf "%s = %a" name Ses_pattern.Pattern.pp p);
                List.iter
                  (fun d ->
                    Buffer.add_string buf
                      ("\n" ^ Ses_analysis.Diagnostic.to_string d))
                  worth_reporting;
                Ok (Buffer.contents buf)))

let cmd_list st =
  match st.patterns with
  | [] -> Ok "(no patterns defined)"
  | ps -> Ok (String.concat "\n" (List.rev_map fst ps))

let cmd_show st name =
  Result.map
    (fun p ->
      let a = Ses_core.Automaton.of_pattern p in
      let cases =
        String.concat "; "
          (List.mapi
             (fun i c ->
               Format.asprintf "V%d %a" (i + 1) Ses_pattern.Exclusivity.pp_case c)
             (Ses_pattern.Exclusivity.classify p))
      in
      Format.asprintf "%a@.automaton: %d states, %d transitions, %d orderings@.%s"
        Ses_pattern.Pattern.pp p
        (Ses_core.Automaton.n_states a)
        (Ses_core.Automaton.n_transitions a)
        (Ses_core.Automaton.n_paths a)
        cases)
    (pattern_of st name)

let cmd_analyze st name =
  Result.map
    (fun p ->
      let open Ses_analysis in
      let result = Analyzer.analyze_pattern p in
      let buf = Buffer.create 128 in
      (match result.Analyzer.diagnostics with
      | [] -> Buffer.add_string buf "diagnostics: none"
      | diags ->
          Buffer.add_string buf
            (String.concat "\n" (List.map Diagnostic.to_string diags)));
      if result.Analyzer.pruned_transitions > 0 then
        Buffer.add_string buf
          (Printf.sprintf "\npruned: %d transition(s), %d state(s)"
             result.Analyzer.pruned_transitions result.Analyzer.pruned_states);
      Buffer.contents buf)
    (pattern_of st name)

let cmd_plan st name =
  Result.map
    (fun p ->
      let a = Ses_core.Automaton.of_pattern p in
      let plan = Ses_core.Planner.plan a in
      (* With a relation loaded the plan can also say which access path
         the cost model would take against it. *)
      let access =
        Option.map
          (fun r ->
            Ses_core.Planner.choose_access
              ~stats:(Ses_event.Stats.of_relation r) plan a)
          st.relation
      in
      String.trim (Ses_core.Planner.describe ?access plan))
    (pattern_of st name)

let cmd_run st name =
  match relation_of st, pattern_of st name with
  | Error e, _ | _, Error e -> Error e
  | Ok r, Ok p ->
      let a = Ses_core.Automaton.of_pattern p in
      let outcome = Ses_core.Planner.run_relation a r in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "matches: %d\n"
           (List.length outcome.Ses_core.Engine.matches));
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Format.asprintf "  %a\n" (Ses_core.Substitution.pp p) s))
        outcome.Ses_core.Engine.matches;
      Buffer.add_string buf
        (Printf.sprintf "peak instances: %d"
           outcome.Ses_core.Engine.metrics
             .Ses_core.Metrics.max_simultaneous_instances);
      Ok (Buffer.contents buf)

let cmd_trace st name limit =
  match relation_of st, pattern_of st name with
  | Error e, _ | _, Error e -> Error e
  | Ok r, Ok p ->
      let a = Ses_core.Automaton.of_pattern p in
      let steps, _ = Ses_core.Trace.run a r in
      let steps =
        match limit with
        | None -> steps
        | Some n -> List.filteri (fun i _ -> i < n) steps
      in
      Ok
        (String.concat "\n"
           (List.map
              (fun obs ->
                Format.asprintf "%a" (Ses_core.Trace.pp_observation p) obs)
              steps))

let cmd_dot st name =
  Result.map
    (fun p ->
      String.trim
        (Ses_core.Dot.of_automaton (Ses_core.Automaton.of_pattern p)))
    (pattern_of st name)

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let execute st line =
  let cmd, rest = split_command (String.trim line) in
  match String.lowercase_ascii cmd, rest with
  | "", _ -> Ok ""
  | "help", _ -> Ok help_text
  | "load", path when path <> "" -> cmd_load st path
  | "load", _ -> fail "usage: load <file.csv>"
  | "schema", _ -> cmd_schema st
  | "count", _ -> cmd_count st
  | "window", arg -> cmd_window st arg
  | "let", rest -> cmd_let st rest
  | "list", _ -> cmd_list st
  | "show", name when name <> "" -> cmd_show st name
  | "analyze", name when name <> "" -> cmd_analyze st name
  | "plan", name when name <> "" -> cmd_plan st name
  | "run", name when name <> "" -> cmd_run st name
  | "trace", rest when rest <> "" -> (
      match String.split_on_char ' ' rest with
      | [ name ] -> cmd_trace st name None
      | [ name; n ] -> (
          match int_of_string_opt n with
          | Some n -> cmd_trace st name (Some n)
          | None -> fail "usage: trace <name> [steps]")
      | _ -> fail "usage: trace <name> [steps]")
  | "dot", name when name <> "" -> cmd_dot st name
  | ("show" | "analyze" | "plan" | "run" | "trace" | "dot"), _ ->
      fail "this command expects a pattern name"
  | other, _ -> fail "unknown command %S (try: help)" other

let read_logical_line interactive =
  let rec collect acc =
    if interactive then (print_string (if acc = [] then "ses> " else "...> "); flush stdout);
    match In_channel.input_line stdin with
    | None -> if acc = [] then None else Some (String.concat " " (List.rev acc))
    | Some line ->
        let trimmed = String.trim line in
        if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '\\'
        then collect (String.sub trimmed 0 (String.length trimmed - 1) :: acc)
        else Some (String.concat " " (List.rev (trimmed :: acc)))
  in
  collect []

let () =
  Ses_analysis.Analyzer.register ();
  let interactive = Unix.isatty Unix.stdin in
  if interactive then print_endline "ses repl — type 'help' for commands";
  let st = { relation = None; patterns = [] } in
  let rec loop () =
    match read_logical_line interactive with
    | None -> ()
    | Some line when String.trim (String.lowercase_ascii line) = "quit"
                     || String.trim (String.lowercase_ascii line) = "exit" ->
        ()
    | Some line ->
        (match execute st line with
        | Ok "" -> ()
        | Ok out -> print_endline out
        | Error msg -> print_endline ("error: " ^ msg));
        loop ()
  in
  loop ()
