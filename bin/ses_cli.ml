(* ses — command-line front end for the SES pattern-matching library.

   Subcommands:
     generate     synthesize a workload and store it as CSV
     match        run a pattern (textual language) over a CSV relation
     dot          export the SES automaton of a pattern as Graphviz
     window       report the window size W (Definition 5) of a relation
     analyze      classify a pattern and print the Theorem 1-3 bounds
     experiments  regenerate the paper's tables and figures *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_die = function
  | Ok x -> x
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1

let load_relation path = or_die (Ses_store.Csv.load path)

let load_pattern schema query query_file =
  let text =
    match query, query_file with
    | Some q, None -> q
    | None, Some f -> read_file f
    | Some _, Some _ ->
        prerr_endline "error: pass either --query or --query-file, not both";
        exit 1
    | None, None ->
        prerr_endline "error: a query is required (--query or --query-file)";
        exit 1
  in
  or_die (Ses_lang.Lang.parse_pattern schema text)

(* generate *)

let generate kind out seed patients duplicate =
  let seed64 = Int64.of_int seed in
  let relation =
    match kind with
    | "chemo" ->
        Ses_gen.Chemo.generate
          { Ses_gen.Chemo.default with Ses_gen.Chemo.seed = seed64; patients }
    | "finance" ->
        Ses_gen.Finance.generate
          { Ses_gen.Finance.default with Ses_gen.Finance.seed = seed64 }
    | "rfid" ->
        Ses_gen.Rfid.generate
          { Ses_gen.Rfid.default with Ses_gen.Rfid.seed = seed64 }
    | other ->
        prerr_endline ("error: unknown workload kind " ^ other);
        exit 1
  in
  let relation =
    if duplicate > 1 then Ses_gen.Dataset.duplicate duplicate relation
    else relation
  in
  or_die (Ses_store.Csv.save out relation);
  Printf.printf "wrote %d events to %s\n"
    (Ses_event.Relation.cardinality relation)
    out

let kind_arg =
  Arg.(
    value
    & opt string "chemo"
    & info [ "kind" ] ~docv:"KIND" ~doc:"Workload: chemo, finance or rfid.")

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output CSV file.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let patients_arg =
  Arg.(
    value
    & opt int Ses_gen.Chemo.default.Ses_gen.Chemo.patients
    & info [ "patients" ] ~docv:"N" ~doc:"Number of patients (chemo only).")

let duplicate_arg =
  Arg.(
    value
    & opt int 1
    & info [ "duplicate" ] ~docv:"K"
        ~doc:"Replicate every event K times (the paper's D-series scaling).")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a workload and store it as CSV")
    Term.(const generate $ kind_arg $ out_arg $ seed_arg $ patients_arg
          $ duplicate_arg)

(* shared match/dot/analyze options *)

let data_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Input relation (CSV).")

let query_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Pattern in the query language.")

let query_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "query-file" ] ~docv:"FILE" ~doc:"File containing the pattern.")

let filter_conv =
  Arg.enum
    [
      ("none", Ses_core.Event_filter.No_filter);
      ("paper", Ses_core.Event_filter.Paper);
      ("strong", Ses_core.Event_filter.Strong);
    ]

let filter_arg =
  Arg.(
    value
    & opt filter_conv Ses_core.Event_filter.No_filter
    & info [ "filter" ] ~docv:"MODE"
        ~doc:"Event filter (Sec. 4.5): none, paper or strong.")

let policy_conv =
  Arg.enum
    [
      ("operational", Ses_core.Substitution.Operational);
      ("literal", Ses_core.Substitution.Literal);
    ]

let policy_arg =
  Arg.(
    value
    & opt policy_conv Ses_core.Substitution.Operational
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Finalization policy for Definition 2's conditions 4-5.")

let store_conv =
  Arg.enum
    [
      ("indexed", Ses_core.Engine.Indexed);
      ("flat", Ses_core.Engine.Flat);
    ]

let store_arg =
  Arg.(
    value
    & opt store_conv Ses_core.Engine.Indexed
    & info [ "store" ] ~docv:"STORE"
        ~doc:
          "Instance pool layout: indexed (state-bucketed store, the \
           default) or flat (the reference list, for comparison).")

let show_metrics_arg =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print runtime metrics.")

let show_raw_arg =
  Arg.(
    value & flag
    & info [ "raw" ] ~doc:"Also print raw candidates before finalization.")

let table_arg =
  Arg.(
    value & flag
    & info [ "table" ] ~doc:"Render matches as a table (one column per variable).")

let strategy_conv =
  Arg.conv
    ( (fun s ->
        match Ses_core.Executor.strategy_of_string s with
        | Ok s -> Ok s
        | Error msg -> Error (`Msg msg)),
      fun ppf s ->
        Format.pp_print_string ppf (Ses_core.Executor.strategy_name s) )

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv `Auto
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Execution strategy: auto (planner-selected), plain, partitioned, \
           naive or brute-force.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Stream events straight from the CSV file through the executor \
           (O(1) memory) instead of materializing the relation; the Sec. \
           4.5 constant-condition filter is pushed into the scan when the \
           pattern supports it.")

let telemetry_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Record runtime telemetry (spans, histograms, gauges) during the \
           run and write the profile afterwards: to stdout when FILE is \
           omitted or \"-\", else to FILE. A FILE ending in .prom gets \
           Prometheus text exposition format, anything else JSON. Without \
           this flag every probe is a disabled branch.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the executors that can use them (default 1 = \
           sequential). With N > 1 the partitioned and auto strategies \
           shard their per-key pools across N OCaml domains when the \
           pattern is partitionable; the par-partitioned strategy defaults \
           to the machine's core count when this is left at 1. Matching \
           output is identical to the sequential run.")

let batch_arg =
  Arg.(
    value & opt int Ses_core.Engine.default_batch_size
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Chunk size for the batched execution core (default tuned by the \
           bench harness). Events are fed through the executors N at a \
           time — the CSV scan yields filtered chunks, per-batch engine \
           work (event filter, expiry sweep, telemetry probes) amortizes \
           over each chunk, and the domain-parallel executors ship whole \
           sub-batches over their queues. Matching output is identical at \
           every batch size; N=1 recovers per-event delivery.")

let access_conv =
  Arg.conv
    ( (fun s ->
        match Ses_core.Planner.access_mode_of_string s with
        | Ok m -> Ok m
        | Error msg -> Error (`Msg msg)),
      fun ppf m ->
        Format.pp_print_string ppf (Ses_core.Planner.access_mode_name m) )

let access_arg =
  Arg.(
    value
    & opt access_conv `Auto
    & info [ "access" ] ~docv:"PATH"
        ~doc:
          "Access path over the stored relation: auto (cost-based choice \
           between a full scan and index probes, the default), scan (force \
           the full scan) or index (force the index path whenever it is \
           sound). The index path probes per-attribute secondary indexes \
           with each variable's constant conditions, unions the candidate \
           sets, clips them to the pattern window and feeds the sparse \
           stream through the ordinary executor; matches are identical \
           either way.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the execution plan before the results, including the \
           chosen access path with estimated and actual candidate counts.")

let print_match_results pattern ~raw ~matches ~metrics show_metrics show_raw
    table =
  Format.printf "pattern: %a@." Ses_pattern.Pattern.pp pattern;
  if show_raw then begin
    Format.printf "raw candidates: %d@." (List.length raw);
    List.iter
      (fun s -> Format.printf "  %a@." (Ses_core.Substitution.pp pattern) s)
      raw
  end;
  if table then
    Format.printf "%a@." Ses_harness.Report.pp
      (Ses_harness.Match_table.of_matches pattern matches)
  else begin
    Format.printf "matches: %d@." (List.length matches);
    List.iter
      (fun s -> Format.printf "  %a@." (Ses_core.Substitution.pp pattern) s)
      matches
  end;
  if show_metrics then Format.printf "%a@." Ses_core.Metrics.pp metrics

(* Several -q patterns over one feed: the shared multi-query plan. *)
let run_multi_match ~options ~strategy ~queries ~data show_metrics show_raw
    table =
  let relation = load_relation data in
  let schema = Ses_event.Relation.schema relation in
  let named =
    List.mapi
      (fun i text ->
        let pattern = or_die (Ses_lang.Lang.parse_pattern schema text) in
        ( Printf.sprintf "q%d" (i + 1),
          pattern,
          Ses_core.Automaton.of_pattern pattern ))
      queries
  in
  let t =
    Ses_core.Multi.create_mixed ~options
      (List.map (fun (n, _, a) -> (n, a, strategy)) named)
  in
  let events = Array.of_seq (Ses_event.Relation.to_seq relation) in
  let n = Array.length events in
  let b = max 1 options.Ses_core.Engine.batch_size in
  let i = ref 0 in
  while !i < n do
    let len = min b (n - !i) in
    ignore (Ses_core.Multi.feed_batch t (Array.sub events !i len));
    i := !i + len
  done;
  ignore (Ses_core.Multi.close t);
  let outcomes = Ses_core.Multi.outcomes t in
  List.iter
    (fun (name, pattern, _) ->
      let o = List.assoc name outcomes in
      Format.printf "--- %s ---@." name;
      print_match_results pattern ~raw:o.Ses_core.Engine.raw
        ~matches:o.Ses_core.Engine.matches ~metrics:o.Ses_core.Engine.metrics
        show_metrics show_raw table)
    named;
  if show_metrics then
    List.iter
      (fun (s : Ses_core.Shared_plan.stats) ->
        Format.printf
          "shared plan: %d merged group(s) covering %d quer(ies), %d \
           alias(es), %d indexed atom(s), index hit rate %.4f@."
          s.Ses_core.Shared_plan.st_merged_groups
          s.Ses_core.Shared_plan.st_merged_queries
          s.Ses_core.Shared_plan.st_aliased_queries
          s.Ses_core.Shared_plan.st_index_atoms
          s.Ses_core.Shared_plan.st_index_hit_rate)
      (Ses_core.Multi.shared_stats t)

let run_match data queries query_file strategy stream domains batch access
    explain filter policy store telemetry show_metrics show_raw table =
  Ses_baseline.Brute_force.register ();
  Ses_analysis.Analyzer.register ();
  if domains < 1 then begin
    prerr_endline "error: --domains must be at least 1";
    exit 1
  end;
  if batch < 1 then begin
    prerr_endline "error: --batch must be at least 1";
    exit 1
  end;
  if access <> `Auto && (stream || List.length queries > 1) then begin
    prerr_endline
      "error: --access applies to a single non-streaming query (the \
       streaming and multi-query paths always scan)";
    exit 1
  end;
  let query = match queries with [ q ] -> Some q | _ -> None in
  let recorder =
    Option.map (fun _ -> Ses_core.Telemetry.create ()) telemetry
  in
  let run_match_body () =
  let options =
    {
      Ses_core.Engine.default_options with
      Ses_core.Engine.filter;
      policy;
      store;
      domains;
      batch_size = batch;
      telemetry = recorder;
    }
  in
  if List.length queries > 1 then begin
    if query_file <> None then begin
      prerr_endline "error: pass either --query or --query-file, not both";
      exit 1
    end;
    if stream then begin
      prerr_endline "error: --stream supports a single query";
      exit 1
    end;
    run_multi_match ~options ~strategy ~queries ~data show_metrics show_raw
      table
  end
  else if stream then begin
    let parsed = ref None in
    let outcome =
      or_die
        (Ses_harness.Stream_runner.run ~options ~strategy
           ~query:(fun schema ->
             let pattern = load_pattern schema query query_file in
             parsed := Some pattern;
             Ok (Ses_core.Automaton.of_pattern pattern))
           data)
    in
    let pattern = Option.get !parsed in
    print_match_results pattern ~raw:outcome.Ses_harness.Stream_runner.raw
      ~matches:outcome.Ses_harness.Stream_runner.matches
      ~metrics:outcome.Ses_harness.Stream_runner.metrics show_metrics show_raw
      table;
    if show_metrics then begin
      Format.printf "executor: %s@." outcome.Ses_harness.Stream_runner.executor;
      Format.printf "events scanned: %d, delivered: %d@."
        outcome.Ses_harness.Stream_runner.events_scanned
        outcome.Ses_harness.Stream_runner.events_delivered;
      match outcome.Ses_harness.Stream_runner.pushed with
      | None -> Format.printf "pushed filter: none@."
      | Some p ->
          Format.printf "pushed filter: %a@." Ses_store.Selection.pp p
    end
  end
  else begin
    let relation = load_relation data in
    let schema = Ses_event.Relation.schema relation in
    let pattern = load_pattern schema query query_file in
    let automaton = Ses_core.Automaton.of_pattern pattern in
    let prepared = Ses_harness.Access_exec.prepare relation in
    let outcome =
      Ses_harness.Access_exec.run ~options ~strategy ~mode:access prepared
        automaton
    in
    if explain then
      Format.printf "%s"
        (Ses_core.Planner.describe
           ~access:outcome.Ses_harness.Access_exec.access
           (Ses_core.Planner.plan automaton));
    print_match_results pattern ~raw:outcome.Ses_harness.Access_exec.raw
      ~matches:outcome.Ses_harness.Access_exec.matches
      ~metrics:outcome.Ses_harness.Access_exec.metrics show_metrics show_raw
      table;
    if show_metrics then begin
      Format.printf "executor: %s@."
        outcome.Ses_harness.Access_exec.executor;
      Format.printf "%s@."
        (Ses_core.Planner.describe_access
           ~actual:outcome.Ses_harness.Access_exec.candidates
           outcome.Ses_harness.Access_exec.access)
    end
  end
  in
  (try run_match_body ()
   with Ses_core.Naive.Too_large n ->
     prerr_endline
       (Printf.sprintf
          "error: the naive oracle would enumerate more than %d assignments \
           on this input; use a smaller relation or another --strategy"
          n);
     exit 1);
  match telemetry, recorder with
  | Some dest, Some tl ->
      (* All executors have closed (and joined their domains) by now, so
         the snapshot reads quiesced probes. *)
      let profile = Ses_core.Telemetry.snapshot tl in
      let text =
        if Filename.check_suffix dest ".prom" then
          Ses_core.Telemetry.to_prometheus profile
        else Ses_core.Telemetry.to_json profile ^ "\n"
      in
      if dest = "-" then print_string text
      else
        Out_channel.with_open_text dest (fun oc ->
            Out_channel.output_string oc text)
  | _ -> ()

let match_queries_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:
          "Pattern in the query language. Repeatable: with several -q the \
           patterns run together over one pass of the relation through the \
           shared multi-query plan (predicate-index routing, prefix \
           merging), with per-query results printed in order.")

let match_cmd =
  Cmd.v
    (Cmd.info "match" ~doc:"Run one or more SES patterns over a stored relation")
    Term.(
      const run_match $ data_arg $ match_queries_arg $ query_file_arg
      $ strategy_arg
      $ stream_arg $ domains_arg $ batch_arg $ access_arg $ explain_arg
      $ filter_arg $ policy_arg
      $ store_arg $ telemetry_arg $ show_metrics_arg $ show_raw_arg
      $ table_arg)

(* dot *)

let run_dot data query query_file no_conditions =
  let relation = load_relation data in
  let schema = Ses_event.Relation.schema relation in
  let pattern = load_pattern schema query query_file in
  let automaton = Ses_core.Automaton.of_pattern pattern in
  print_string (Ses_core.Dot.of_automaton ~conditions:(not no_conditions) automaton)

let no_conditions_arg =
  Arg.(
    value & flag
    & info [ "no-conditions" ] ~doc:"Label edges with variables only.")

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the SES automaton as Graphviz DOT")
    Term.(const run_dot $ data_arg $ query_arg $ query_file_arg $ no_conditions_arg)

(* window *)

let run_window data tau =
  let relation = load_relation data in
  Printf.printf "%s\n" (Ses_gen.Dataset.describe relation tau)

let tau_arg =
  Arg.(
    value & opt int 264
    & info [ "tau" ] ~docv:"N" ~doc:"Window duration in time units.")

let window_cmd =
  Cmd.v
    (Cmd.info "window" ~doc:"Report the window size W (Definition 5)")
    Term.(const run_window $ data_arg $ tau_arg)

(* analyze *)

let query_text query query_file =
  match query, query_file with
  | Some q, None -> q
  | None, Some f -> read_file f
  | Some _, Some _ ->
      prerr_endline "error: pass either --query or --query-file, not both";
      exit 1
  | None, None ->
      prerr_endline "error: a query is required (--query or --query-file)";
      exit 1

let diagnostics_json diags result =
  let open Ses_analysis in
  let counts =
    Printf.sprintf "\"errors\":%d,\"warnings\":%d,\"infos\":%d"
      (Diagnostic.count Diagnostic.Error diags)
      (Diagnostic.count Diagnostic.Warning diags)
      (Diagnostic.count Diagnostic.Info diags)
  in
  let analysis =
    match result with
    | None -> ""
    | Some (r : Analyzer.result) ->
        Printf.sprintf
          ",\"pruned_transitions\":%d,\"pruned_states\":%d,\"never_matches\":%b"
          r.Analyzer.pruned_transitions r.Analyzer.pruned_states
          r.Analyzer.never_matches
  in
  Printf.sprintf "{\"diagnostics\":%s,%s%s}"
    (Diagnostic.list_to_json diags)
    counts analysis

let print_diagnostics diags =
  let open Ses_analysis in
  if diags = [] then print_endline "diagnostics: none"
  else begin
    Format.printf "diagnostics: %d error(s), %d warning(s), %d info(s)@."
      (Diagnostic.count Diagnostic.Error diags)
      (Diagnostic.count Diagnostic.Warning diags)
      (Diagnostic.count Diagnostic.Info diags);
    List.iter (fun d -> Format.printf "  %a@." Diagnostic.pp d) diags
  end

let run_analyze data schema_spec query query_file json dot =
  let open Ses_analysis in
  Analyzer.register ();
  let schema, relation =
    match data, schema_spec with
    | Some d, None ->
        let r = load_relation d in
        (Ses_event.Relation.schema r, Some r)
    | None, Some s -> (or_die (Ses_event.Schema.of_string s), None)
    | Some _, Some _ ->
        prerr_endline "error: pass either --data or --schema, not both";
        exit 1
    | None, None ->
        prerr_endline "error: a schema is required (--data or --schema)";
        exit 1
  in
  let text = query_text query query_file in
  match Analyzer.analyze_query schema text with
  | Error diags ->
      if json then print_endline (diagnostics_json diags None)
      else print_diagnostics diags;
      exit 1
  | Ok result ->
      let pattern = result.Analyzer.pattern in
      let diags = result.Analyzer.diagnostics in
      if dot then begin
        let dead tr = List.memq tr result.Analyzer.dead in
        print_string
          (Ses_core.Dot.of_automaton ~dead result.Analyzer.original)
      end
      else if json then print_endline (diagnostics_json diags (Some result))
      else begin
        let automaton = result.Analyzer.original in
        Format.printf "pattern: %a@." Ses_pattern.Pattern.pp pattern;
        Format.printf "automaton: %d states, %d transitions, %d orderings@."
          (Ses_core.Automaton.n_states automaton)
          (Ses_core.Automaton.n_transitions automaton)
          (Ses_core.Automaton.n_paths automaton);
        print_diagnostics diags;
        if result.Analyzer.pruned_transitions > 0 then
          Format.printf "pruned: %d transition(s), %d state(s)@."
            result.Analyzer.pruned_transitions result.Analyzer.pruned_states;
        (match relation with
        | None -> ()
        | Some relation ->
            let tau = Ses_pattern.Pattern.tau pattern in
            let w = Ses_event.Relation.window_size relation tau in
            Format.printf "window size W = %d@." w;
            print_endline (Ses_harness.Bounds.describe pattern ~w));
        let plan = Ses_core.Planner.plan automaton in
        let access =
          Option.map
            (fun r ->
              Ses_core.Planner.choose_access
                ~stats:(Ses_event.Stats.of_relation r) plan automaton)
            relation
        in
        Format.printf "execution plan:@.%s"
          (Ses_core.Planner.describe ?access plan)
      end;
      if Diagnostic.has_errors diags then exit 1

let data_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "data" ] ~docv:"FILE"
        ~doc:"Input relation (CSV); supplies the schema and window stats.")

let schema_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "schema" ] ~docv:"SPEC"
        ~doc:
          "Event schema as NAME:TYPE,... with types int, float and string; \
           analyze the query without loading a relation.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the diagnostics as a JSON object.")

let dot_arg =
  Arg.(
    value & flag
    & info [ "dot" ]
        ~doc:
          "Print the automaton as Graphviz DOT with transitions the \
           analyzer would prune rendered dashed and gray, instead of the \
           report.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically analyze a pattern: diagnostics, satisfiability, \
          pruning, and the Theorem 1-3 instance bounds")
    Term.(
      const run_analyze $ data_opt_arg $ schema_arg $ query_arg
      $ query_file_arg $ json_arg $ dot_arg)

(* explain *)

let run_explain data query query_file =
  let relation = load_relation data in
  let schema = Ses_event.Relation.schema relation in
  let pattern = load_pattern schema query query_file in
  let automaton = Ses_core.Automaton.of_pattern pattern in
  Format.printf "%a@." Ses_core.Explain.pp
    (Ses_core.Explain.explain automaton relation)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Diagnose where the search effort went (why did nothing match?)")
    Term.(const run_explain $ data_arg $ query_arg $ query_file_arg)

(* trace *)

let run_trace data query query_file only_matching limit =
  let relation = load_relation data in
  let schema = Ses_event.Relation.schema relation in
  let pattern = load_pattern schema query query_file in
  let automaton = Ses_core.Automaton.of_pattern pattern in
  let steps, outcome = Ses_core.Trace.run automaton relation in
  let steps =
    if only_matching then
      List.concat_map
        (fun m -> Ses_core.Trace.for_buffer m steps)
        outcome.Ses_core.Engine.matches
    else steps
  in
  let steps =
    match limit with
    | None -> steps
    | Some n -> List.filteri (fun i _ -> i < n) steps
  in
  List.iter
    (fun obs ->
      Format.printf "%a@." (Ses_core.Trace.pp_observation pattern) obs)
    steps;
  Format.printf "matches: %d@." (List.length outcome.Ses_core.Engine.matches)

let only_matching_arg =
  Arg.(
    value & flag
    & info [ "only-matching" ]
        ~doc:"Show only the steps of instances that produced a match.")

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~docv:"N" ~doc:"Print at most N steps.")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the execution narrative (the paper's Figure 6)")
    Term.(
      const run_trace $ data_arg $ query_arg $ query_file_arg
      $ only_matching_arg $ limit_arg)

(* experiments *)

let run_experiments quick csv_dir patients datasets =
  let base =
    if quick then Ses_harness.Experiments.quick_config
    else Ses_harness.Experiments.default_config
  in
  let cfg =
    {
      base with
      Ses_harness.Experiments.chemo =
        (match patients with
        | None -> base.Ses_harness.Experiments.chemo
        | Some p ->
            { base.Ses_harness.Experiments.chemo with Ses_gen.Chemo.patients = p });
      n_datasets =
        Option.value ~default:base.Ses_harness.Experiments.n_datasets datasets;
    }
  in
  Ses_harness.Experiments.run_all ?csv_dir ~ppf:Format.std_formatter cfg

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the small test workload.")

let csv_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv-dir" ] ~docv:"DIR" ~doc:"Also save one CSV per table.")

let exp_patients_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "patients" ] ~docv:"N" ~doc:"Override the D1 patient count.")

let exp_datasets_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "datasets" ] ~docv:"N" ~doc:"Number of D-series datasets.")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's evaluation tables and figures")
    Term.(
      const run_experiments $ quick_arg $ csv_dir_arg $ exp_patients_arg
      $ exp_datasets_arg)

(* store *)

let run_store_stats data catalog name refresh cap =
  match data, catalog with
  | Some file, None ->
      let _schema, s = or_die (Ses_store.Csv_stream.stats ?cap file) in
      Format.printf "%a@." Ses_event.Stats.pp s
  | None, Some dir -> begin
      let cat = or_die (Ses_store.Catalog.open_dir dir) in
      match name with
      | None ->
          (* No relation named: list what the catalog holds. *)
          List.iter print_endline (Ses_store.Catalog.list cat)
      | Some name ->
          let s =
            or_die
              (if refresh || cap <> None then
                 Ses_store.Catalog.refresh_stats ?cap cat name
               else Ses_store.Catalog.stats cat name)
          in
          Format.printf "%a@." Ses_event.Stats.pp s
    end
  | Some _, Some _ ->
      prerr_endline "error: pass either --data or --catalog, not both";
      exit 1
  | None, None ->
      prerr_endline "error: a source is required (--data or --catalog)";
      exit 1

let catalog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "catalog" ] ~docv:"DIR"
        ~doc:
          "Catalog directory of stored relations; reads the persisted \
           [.stats] sidecar when it is fresh and recomputes (and \
           re-persists) it otherwise.")

let store_name_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"NAME"
        ~doc:
          "Relation name inside the catalog; omitted, the stored relations \
           are listed instead.")

let refresh_arg =
  Arg.(
    value & flag
    & info [ "refresh" ]
        ~doc:
          "Force a streaming recompute of the sidecar even when it looks \
           fresh (e.g. after editing the CSV in place).")

let cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cap" ] ~docv:"N"
        ~doc:
          "Bound the per-attribute histograms to the N most frequent \
           values (implies --refresh for catalog relations).")

let store_stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print catalog statistics (row count, per-attribute cardinality \
          and histograms) for a relation — the numbers the access-path \
          planner costs index probes with")
    Term.(
      const run_store_stats $ data_opt_arg $ catalog_arg $ store_name_arg
      $ refresh_arg $ cap_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect the event store (catalogs, statistics sidecars)")
    [ store_stats_cmd ]

(* ---- serve ---- *)

let run_serve schema_text host port port_file overflow capacity idle quota
    no_telemetry =
  (* Accept a CSV header pasted verbatim: strip the trailing timestamp
     column (the wire rows still carry it, like the file rows do). *)
  let schema_text =
    let t = String.trim schema_text in
    if String.length t >= 2 && String.sub t (String.length t - 2) 2 = ",T"
    then String.sub t 0 (String.length t - 2)
    else t
  in
  let schema = or_die (Ses_event.Schema.of_string schema_text) in
  let telemetry =
    if no_telemetry then None else Some (Ses_core.Telemetry.create ())
  in
  let rt_config =
    {
      (Ses_server.Runtime.default_config ~schema) with
      Ses_server.Runtime.overflow =
        (match overflow with
        | `Drop -> Ses_server.Runtime.Drop_oldest
        | `Block -> Ses_server.Runtime.Block);
      queue_capacity = capacity;
      idle_timeout = idle;
      drain_quota = quota;
      telemetry;
    }
  in
  Ses_server.Tcp.serve
    ~config:
      {
        Ses_server.Tcp.host;
        port;
        port_file;
        log =
          (fun line ->
            print_string line;
            flush stdout);
      }
    rt_config

let schema_arg =
  Arg.(
    value
    & opt string "ID:int,L:string,V:int"
    & info [ "schema" ] ~docv:"SCHEMA"
        ~doc:
          "Row schema for EVENT/BATCH lines, as $(i,name:type) pairs \
           (types: int, string, float), matching the header of the CSV \
           files the offline commands read.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind (serve) or reach \
                                         (client).")

let port_arg ~default =
  Arg.(
    value & opt int default
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port; 0 asks the kernel for an ephemeral one.")

let port_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "port-file" ] ~docv:"FILE"
        ~doc:"Write the bound port here once listening (for scripts \
              driving an ephemeral port).")

let overflow_arg =
  Arg.(
    value
    & opt (enum [ ("drop", `Drop); ("block", `Block) ]) `Block
    & info [ "overflow" ] ~docv:"POLICY"
        ~doc:
          "Ingest-queue overflow policy: $(b,drop) sheds the oldest \
           queued events and keeps reading; $(b,block) stops reading the \
           tenant's connections until the queue drains. Both signal \
           SLOW/RESUME.")

let capacity_arg =
  Arg.(
    value & opt int 1024
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:"Per-tenant ingest queue bound.")

let idle_arg =
  Arg.(
    value & opt float 0.
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Close connections idle longer than this (0 disables).")

let quota_arg =
  Arg.(
    value & opt int 256
    & info [ "drain-quota" ] ~docv:"N"
        ~doc:"Events fed per tenant per loop iteration.")

let no_telemetry_arg =
  Arg.(
    value & flag
    & info [ "no-telemetry" ]
        ~doc:"Disable the server.* probes and the /metrics exposition.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant CEP server: a TCP line protocol (AUTH, \
          REGISTER, EVENT/BATCH, SUBSCRIBE, METRICS, ...) streaming \
          matches to subscribers, with a Prometheus /metrics endpoint on \
          the same port. SIGTERM shuts down gracefully.")
    Term.(
      const run_serve $ schema_arg $ host_arg $ port_arg ~default:0
      $ port_file_arg $ overflow_arg $ capacity_arg $ idle_arg $ quota_arg
      $ no_telemetry_arg)

(* ---- client ---- *)

let run_client host port port_file script timeout =
  let port =
    match (port, port_file) with
    | Some p, _ -> p
    | None, Some f -> (
        match int_of_string_opt (String.trim (read_file f)) with
        | Some p -> p
        | None ->
            prerr_endline ("error: bad port file " ^ f);
            exit 1)
    | None, None ->
        prerr_endline "error: pass --port or --port-file";
        exit 1
  in
  let text = match script with "-" -> In_channel.input_all stdin | f -> read_file f in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match Ses_server.Client.run_script ~host ~port ~timeout lines with
  | Ok out ->
      print_string out;
      flush stdout
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1

let script_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "script" ] ~docv:"FILE"
        ~doc:
          "File of protocol lines to send ($(b,-) reads stdin). End with \
           QUIT so the server closes the connection and bounds the read.")

let client_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")

let client_timeout_arg =
  Arg.(
    value & opt float 10.
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Give up connecting/reading after this long.")

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send a script of protocol lines to a running ses serve and \
          print everything it replies (including streamed MATCH/RESULT \
          lines) until it closes the connection.")
    Term.(
      const run_client $ host_arg $ client_port_arg $ port_file_arg
      $ script_arg $ client_timeout_arg)

let () =
  let info =
    Cmd.info "ses" ~version:"1.0.0"
      ~doc:"Sequenced event set pattern matching (EDBT 2011 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            match_cmd;
            dot_cmd;
            window_cmd;
            analyze_cmd;
            explain_cmd;
            trace_cmd;
            store_cmd;
            experiments_cmd;
            serve_cmd;
            client_cmd;
          ]))
